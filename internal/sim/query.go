package sim

import (
	"context"
	"fmt"
	"math"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// Fig8Line is one Figure 8 series: for queries of size m on an
// r-dimensional deployment, the average fraction of hypercube nodes
// contacted to reach each recall level.
type Fig8Line struct {
	R, M      int
	Recalls   []float64
	NodesFrac []float64
	// Queries is the number of result-bearing queries averaged.
	Queries int
}

// Fig8 measures cacheless query performance: each query is run
// exhaustively with tracing, and the trace yields the number of nodes
// that had to be contacted to collect every recall fraction of the
// matching objects.
func Fig8(d *Deployment, queries []keyword.Set, recalls []float64) (Fig8Line, error) {
	if len(queries) == 0 || len(recalls) == 0 {
		return Fig8Line{}, fmt.Errorf("sim: fig8 needs queries and recall levels")
	}
	ctx := context.Background()
	totalNodes := float64(d.Nodes())
	sums := make([]float64, len(recalls))
	counted := 0
	m := queries[0].Len()
	for _, q := range queries {
		res, err := d.Client.SupersetSearch(ctx, q, core.All, core.SearchOptions{NoCache: true, Trace: true})
		if err != nil {
			return Fig8Line{}, fmt.Errorf("fig8 query %v: %w", q, err)
		}
		total := len(res.Matches)
		if total == 0 {
			continue
		}
		counted++
		for ri, recall := range recalls {
			// At 100 % recall the searcher cannot know it has every
			// match until the subhypercube is exhausted, so the full
			// traversal is charged (the paper's ≈2^-m observation);
			// below 100 % the traversal stops at the target count.
			steps := len(res.Trace)
			if recall < 1 {
				target := int(math.Ceil(recall * float64(total)))
				if target < 1 {
					target = 1
				}
				steps = 0
				cum := 0
				for _, st := range res.Trace {
					steps++
					cum += st.Matches
					if cum >= target {
						break
					}
				}
			}
			sums[ri] += float64(steps) / totalNodes
		}
	}
	if counted == 0 {
		return Fig8Line{}, fmt.Errorf("sim: fig8 found no result-bearing queries")
	}
	line := Fig8Line{R: d.R, M: m, Recalls: recalls, NodesFrac: make([]float64, len(recalls)), Queries: counted}
	for ri := range recalls {
		line.NodesFrac[ri] = sums[ri] / float64(counted)
	}
	return line, nil
}

// Fig9Point is one Figure 9 measurement: with per-node cache capacity
// α · |O| / 2^r, the average fraction of nodes contacted per query
// over a replayed query log at a fixed recall rate.
type Fig9Point struct {
	Alpha         float64
	CacheCapacity int
	AvgNodesFrac  float64
	HitRate       float64
	Queries       int
}

// Fig9 replays the query log against deployments with increasing cache
// capacity. maxQueries bounds the replay length (0 = full log).
func Fig9(c *corpus.Corpus, log *corpus.QueryLog, r int, alphas []float64, recall float64, maxQueries int) ([]Fig9Point, error) {
	return Fig9Instrumented(c, log, r, alphas, recall, maxQueries, nil)
}

// Fig9Instrumented is Fig9 with every per-alpha deployment wired to
// reg, so a single registry accumulates telemetry across the whole
// sweep. A nil reg is equivalent to Fig9.
func Fig9Instrumented(c *corpus.Corpus, log *corpus.QueryLog, r int, alphas []float64, recall float64, maxQueries int, reg *telemetry.Registry) ([]Fig9Point, error) {
	if recall <= 0 || recall > 1 {
		return nil, fmt.Errorf("sim: recall %g outside (0, 1]", recall)
	}
	queries := log.Queries()
	if maxQueries > 0 && maxQueries < len(queries) {
		queries = queries[:maxQueries]
	}
	points := make([]Fig9Point, 0, len(alphas))
	for _, alpha := range alphas {
		capacity := int(alpha * float64(c.Len()) / float64(int(1)<<uint(r)))
		pt, err := fig9Once(c, queries, log, r, capacity, recall, reg)
		if err != nil {
			return nil, fmt.Errorf("fig9 alpha %g: %w", alpha, err)
		}
		pt.Alpha = alpha
		points = append(points, pt)
	}
	return points, nil
}

func fig9Once(c *corpus.Corpus, queries []corpus.Query, log *corpus.QueryLog, r, capacity int, recall float64, reg *telemetry.Registry) (Fig9Point, error) {
	d, err := NewInstrumentedDeployment(r, capacity, reg)
	if err != nil {
		return Fig9Point{}, err
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		return Fig9Point{}, err
	}
	return ReplayLog(d, queries, log, recall)
}

// ReplayLog replays a query log against an existing deployment at the
// given recall rate, skipping zero-result templates before sending.
// Every counted query therefore consults the root node's cache exactly
// once (when caching is enabled), which is what lets the deployment's
// telemetry counters reconcile exactly with the returned Fig9Point.
func ReplayLog(d *Deployment, queries []corpus.Query, log *corpus.QueryLog, recall float64) (Fig9Point, error) {
	ctx := context.Background()
	totalNodes := float64(d.Nodes())
	var (
		sumFrac float64
		hits    int
		counted int
	)
	for _, q := range queries {
		total := log.ResultSize(q.Template)
		if total == 0 {
			continue
		}
		threshold := int(math.Ceil(recall * float64(total)))
		if threshold < 1 {
			threshold = 1
		}
		res, err := d.Client.SupersetSearch(ctx, q.Keywords, threshold, core.SearchOptions{})
		if err != nil {
			return Fig9Point{}, fmt.Errorf("replay query %v: %w", q.Keywords, err)
		}
		counted++
		sumFrac += float64(res.Stats.NodesContacted) / totalNodes
		if res.Stats.CacheHit {
			hits++
		}
	}
	if counted == 0 {
		return Fig9Point{}, fmt.Errorf("sim: fig9 replay had no result-bearing queries")
	}
	capacity := 0
	if len(d.Servers) > 0 {
		capacity = d.Servers[0].CacheCapacity()
	}
	return Fig9Point{
		CacheCapacity: capacity,
		AvgNodesFrac:  sumFrac / float64(counted),
		HitRate:       float64(hits) / float64(counted),
		Queries:       counted,
	}, nil
}

// OpCost summarizes the Section 3.5 cost of one operation type.
type OpCost struct {
	Op          string
	AvgMessages float64
	AvgNodes    float64
	Samples     int
}

// OpCosts measures insert, pin-search and delete costs over a sample
// of corpus records, verifying the paper's single-lookup claims.
func OpCosts(d *Deployment, c *corpus.Corpus, samples int) ([]OpCost, error) {
	records := c.Records()
	if samples <= 0 || samples > len(records) {
		samples = len(records)
	}
	ctx := context.Background()
	var insertMsgs, pinMsgs, deleteMsgs, insertNodes, pinNodes, deleteNodes int
	for i := 0; i < samples; i++ {
		rec := records[i]
		o := core.Object{ID: rec.ID + "-opcost", Keywords: rec.Keywords}
		st, err := d.Client.Insert(ctx, o)
		if err != nil {
			return nil, err
		}
		insertMsgs += st.Messages
		insertNodes += st.NodesContacted
		_, st, err = d.Client.PinSearch(ctx, o.Keywords)
		if err != nil {
			return nil, err
		}
		pinMsgs += st.Messages
		pinNodes += st.NodesContacted
		_, st, err = d.Client.Delete(ctx, o)
		if err != nil {
			return nil, err
		}
		deleteMsgs += st.Messages
		deleteNodes += st.NodesContacted
	}
	n := float64(samples)
	return []OpCost{
		{Op: "insert", AvgMessages: float64(insertMsgs) / n, AvgNodes: float64(insertNodes) / n, Samples: samples},
		{Op: "pin-search", AvgMessages: float64(pinMsgs) / n, AvgNodes: float64(pinNodes) / n, Samples: samples},
		{Op: "delete", AvgMessages: float64(deleteMsgs) / n, AvgNodes: float64(deleteNodes) / n, Samples: samples},
	}, nil
}

// TraversalCost compares the three traversal orders on the same query
// and threshold (the ablation study for the Section 3.3/3.5 design
// choices).
type TraversalCost struct {
	Order   core.TraversalOrder
	Nodes   int
	Msgs    int
	Rounds  int
	Matches int
}

// CompareTraversals runs the query once per traversal order.
func CompareTraversals(d *Deployment, q keyword.Set, threshold int) ([]TraversalCost, error) {
	ctx := context.Background()
	out := make([]TraversalCost, 0, 3)
	for _, order := range []core.TraversalOrder{core.TopDown, core.BottomUp, core.ParallelLevels} {
		res, err := d.Client.SupersetSearch(ctx, q, threshold, core.SearchOptions{Order: order, NoCache: true})
		if err != nil {
			return nil, fmt.Errorf("traversal %v: %w", order, err)
		}
		out = append(out, TraversalCost{
			Order:   order,
			Nodes:   res.Stats.NodesContacted,
			Msgs:    res.Stats.Messages,
			Rounds:  res.Stats.Rounds,
			Matches: len(res.Matches),
		})
	}
	return out, nil
}
