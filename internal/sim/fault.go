package sim

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/invindex"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// FaultPoint is one measurement of the fault-tolerance study: with a
// fraction of the 2^r nodes crash-stopped, how much of the ground
// truth each scheme still returns.
type FaultPoint struct {
	FailedFrac float64
	// HyperRecall is the average fraction of matching objects the
	// hypercube scheme still returns, over queries it can answer at
	// all (searches degrade gracefully: failed subtree nodes are
	// skipped and roughly the failed fraction of entries is hidden).
	HyperRecall float64
	// HyperBlocked is the fraction of queries that return nothing at
	// all (root vertex on a failed node).
	HyperBlocked float64
	// DIIBlocked is the fraction of queries the inverted-index
	// baseline cannot answer at all: a query is blocked as soon as ANY
	// of its keywords' posting-list nodes is down, the paper's
	// "failure blocks all queries involving this keyword" argument.
	DIIBlocked float64
	Queries    int
}

// FaultTolerance measures both schemes' behaviour under increasing
// node failures. Failures are drawn per point from seed, with each
// point an independent deployment (crash-stop, no replication — the
// study isolates the index structure's intrinsic tolerance).
func FaultTolerance(c *corpus.Corpus, r int, queries []keyword.Set, failedFracs []float64, seed int64) ([]FaultPoint, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sim: fault study needs queries")
	}
	points := make([]FaultPoint, 0, len(failedFracs))
	for pi, frac := range failedFracs {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("sim: failed fraction %g outside [0, 1)", frac)
		}
		pt, err := faultPoint(c, r, queries, frac, seed+int64(pi))
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func faultPoint(c *corpus.Corpus, r int, queries []keyword.Set, frac float64, seed int64) (FaultPoint, error) {
	d, err := NewDeployment(r, 0)
	if err != nil {
		return FaultPoint{}, err
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		return FaultPoint{}, err
	}

	// DII baseline on its own fleet over the same network.
	diiAddrs := make([]transport.Addr, d.Nodes())
	for v := range diiAddrs {
		diiAddrs[v] = transport.Addr("dii" + strconv.Itoa(v))
	}
	diiResolver := core.FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return diiAddrs[int(v)]
	})
	for v := range diiAddrs {
		if _, err := d.Net.Bind(diiAddrs[v], invindex.NewServer().Handler); err != nil {
			return FaultPoint{}, err
		}
	}
	diiClient, err := invindex.NewClient(r, diiResolver, d.Net)
	if err != nil {
		return FaultPoint{}, err
	}
	ctx := context.Background()
	for _, rec := range c.Records() {
		if _, err := diiClient.Insert(ctx, core.Object{ID: rec.ID, Keywords: rec.Keywords}); err != nil {
			return FaultPoint{}, err
		}
	}

	// Ground truth before failures.
	truth := make([]int, len(queries))
	for qi, q := range queries {
		res, err := d.Client.SupersetSearch(ctx, q, core.All, core.SearchOptions{NoCache: true})
		if err != nil {
			return FaultPoint{}, err
		}
		truth[qi] = len(res.Matches)
	}

	// Crash-stop a random fraction of the logical nodes — the same
	// node indices for both schemes, for a paired comparison.
	rng := rand.New(rand.NewSource(seed))
	failed := int(frac * float64(d.Nodes()))
	for _, v := range pickDistinct(rng, d.Nodes(), failed) {
		d.Net.SetDown(transport.Addr("v"+strconv.Itoa(v)), true)
		d.Net.SetDown(diiAddrs[v], true)
	}

	pt := FaultPoint{FailedFrac: frac}
	counted, answered := 0, 0
	for qi, q := range queries {
		if truth[qi] == 0 {
			continue
		}
		counted++
		res, err := d.Client.SupersetSearch(ctx, q, core.All, core.SearchOptions{NoCache: true})
		if err != nil {
			pt.HyperBlocked++
		} else {
			answered++
			pt.HyperRecall += float64(len(res.Matches)) / float64(truth[qi])
		}
		if _, _, err := diiClient.Search(ctx, q); err != nil {
			pt.DIIBlocked++
		}
	}
	if counted == 0 {
		return FaultPoint{}, fmt.Errorf("sim: no result-bearing queries for fault study")
	}
	pt.Queries = counted
	if answered > 0 {
		pt.HyperRecall /= float64(answered)
	}
	pt.HyperBlocked /= float64(counted)
	pt.DIIBlocked /= float64(counted)
	return pt, nil
}

// pickDistinct returns k distinct ints in [0, n).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	idx := rng.Perm(n)
	return idx[:k]
}

// RenderFaultStudy prints the fault-tolerance comparison.
func RenderFaultStudy(w interface{ Write([]byte) (int, error) }, r int, points []FaultPoint) {
	fmt.Fprintf(w, "Fault tolerance (r=%d) — recall under crash-stop failures, no replication\n", r)
	fmt.Fprintf(w, "%-10s %-14s %-14s %-12s %s\n",
		"failed", "hyper recall", "hyper blocked", "DII blocked", "queries")
	for _, p := range points {
		fmt.Fprintf(w, "%-9.1f%% %-13.1f%% %-13.1f%% %-11.1f%% %d\n",
			100*p.FailedFrac, 100*p.HyperRecall, 100*p.HyperBlocked, 100*p.DIIBlocked, p.Queries)
	}
}

// FaultStudyQueries samples result-bearing study queries from a query
// log: popular templates of sizes 1..3.
func FaultStudyQueries(log *corpus.QueryLog, perSize int) []keyword.Set {
	var out []keyword.Set
	for m := 1; m <= 3; m++ {
		out = append(out, log.PopularOfSize(m, perSize)...)
	}
	return out
}
