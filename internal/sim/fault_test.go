package sim

import (
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/corpus"
)

func TestFaultToleranceHypercubeDegradesGracefully(t *testing.T) {
	c := testCorpus(t, 4000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 500, Templates: 120, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 5)
	if len(queries) < 6 {
		t.Fatalf("too few study queries: %d", len(queries))
	}
	points, err := FaultTolerance(c, 8, queries, []float64{0, 0.1, 0.3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// No failures: full recall, nothing blocked.
	if points[0].HyperRecall < 0.999 || points[0].HyperBlocked != 0 || points[0].DIIBlocked != 0 {
		t.Errorf("baseline point = %+v", points[0])
	}
	// With failures: hypercube recall degrades but stays substantial;
	// blocking grows monotonically for both schemes.
	p30 := points[2]
	// Answered queries lose roughly the failed fraction of entries.
	if p30.HyperRecall < 0.5 {
		t.Errorf("hyper recall at 30%% failures = %.2f, want graceful degradation", p30.HyperRecall)
	}
	if p30.HyperRecall > 0.999 {
		t.Errorf("hyper recall at 30%% failures = %.2f — failure injection had no effect", p30.HyperRecall)
	}
	// The paper's claim: DII blocks far more queries than the
	// hypercube scheme, because one dead keyword node kills every
	// query using that keyword, while the hypercube only loses a query
	// entirely when its root vertex dies.
	if p30.DIIBlocked <= p30.HyperBlocked {
		t.Errorf("DII blocked %.2f ≤ hypercube blocked %.2f — expected DII to block more",
			p30.DIIBlocked, p30.HyperBlocked)
	}
}

func TestFaultToleranceValidation(t *testing.T) {
	c := testCorpus(t, 200)
	if _, err := FaultTolerance(c, 6, nil, []float64{0}, 1); err == nil {
		t.Error("no queries accepted")
	}
	log, _ := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 50, Templates: 10, Seed: 1})
	qs := FaultStudyQueries(log, 2)
	if _, err := FaultTolerance(c, 6, qs, []float64{1.5}, 1); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestRenderFaultStudy(t *testing.T) {
	var sb strings.Builder
	RenderFaultStudy(&sb, 8, []FaultPoint{{FailedFrac: 0.1, HyperRecall: 0.9, DIIBlocked: 0.4, Queries: 10}})
	if !strings.Contains(sb.String(), "Fault tolerance") {
		t.Error("missing header")
	}
}
