package sim

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// BenchmarkHotQueryCache replays a Zipf query mix against a FIFO-cache
// fleet and a popularity-cache (TinyLFU) fleet at equal capacity and
// gates the hot policy at >= 2x better p99 latency.
//
// The mix is the adversarial-but-realistic point for FIFO: a Zipf-1.3
// head (the paper's footnote exponent) whose working set exactly fills
// the cache, plus a 0.5% trickle of one-off scan queries. Each scan
// insertion evicts a head entry, and because FIFO does not refresh
// position on hit, the displaced entry's reinsertion evicts the next
// one — a cascade that keeps head queries missing for the rest of the
// replay. Frequency admission rejects the one-offs outright (sketch
// count 1 versus head counts in the tens), so the hot policy keeps the
// head pinned and only ever misses the scans themselves.
//
// The miss-count comparison is deterministic (seeded log, serial
// replay) and asserted unconditionally; the wall-clock p99 gate
// engages on machines with 4+ cores, PR4-style, where timing is
// stable.
func BenchmarkHotQueryCache(b *testing.B) {
	const (
		r        = 6
		scanGap  = 200 // one scan query per scanGap head queries (0.5%)
		numScans = 20
	)
	c := testCorpus(b, 4000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries:            4000,
		Templates:          17,
		PopularityExponent: 1.3,
		MaxTemplateResults: 8,
		Seed:               9,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The scan stream: one-off result-bearing queries drawn from an
	// independently seeded template pool, deduplicated against the head.
	scanPool, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries:            1,
		Templates:          64,
		MaxTemplateResults: 8,
		Seed:               77,
	})
	if err != nil {
		b.Fatal(err)
	}
	head := make(map[string]bool, len(log.Templates()))
	for _, t := range log.Templates() {
		head[t.Key()] = true
	}
	type scanQuery struct {
		set   keyword.Set
		total int
	}
	scans := make([]scanQuery, 0, numScans)
	for i, t := range scanPool.Templates() {
		if head[t.Key()] {
			continue
		}
		scans = append(scans, scanQuery{set: t, total: scanPool.ResultSize(i + 1)})
		if len(scans) == numScans {
			break
		}
	}
	if len(scans) < numScans {
		b.Fatalf("scan pool yielded only %d distinct one-off queries", len(scans))
	}

	// Cache capacity = units of the head working set with zero slack
	// (exhausted-entry sized: one unit per match).
	capUnits := 0
	for rank := 1; rank <= len(log.Templates()); rank++ {
		n := log.ResultSize(rank)
		if n < 1 {
			n = 1
		}
		capUnits += n
	}

	deploy := func(policy string) *Deployment {
		d, err := NewCustomDeployment(DeployConfig{
			R:             r,
			Peers:         1, // one physical node => one cache of exactly capUnits
			CacheCapacity: capUnits,
			CachePolicy:   policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.InsertCorpus(c); err != nil {
			b.Fatal(err)
		}
		return d
	}
	search := func(d *Deployment, set keyword.Set, total int) time.Duration {
		start := time.Now()
		if _, err := d.Client.SupersetSearch(context.Background(), set, total, core.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// warm replays the head only, populating the cache and the
	// frequency sketch; measured interleaves the scan stream.
	warm := func(d *Deployment) {
		for _, q := range log.Queries() {
			search(d, q.Keywords, log.ResultSize(q.Template))
		}
	}
	measured := func(d *Deployment, timed bool) []time.Duration {
		var lat []time.Duration
		if timed {
			lat = make([]time.Duration, 0, log.Len()+len(scans))
		}
		scanIdx := 0
		for i, q := range log.Queries() {
			if i > 0 && i%scanGap == 0 && scanIdx < len(scans) {
				s := scans[scanIdx]
				scanIdx++
				el := search(d, s.set, s.total)
				if timed {
					lat = append(lat, el)
				}
			}
			el := search(d, q.Keywords, log.ResultSize(q.Template))
			if timed {
				lat = append(lat, el)
			}
		}
		return lat
	}
	p99 := func(lat []time.Duration) time.Duration {
		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[(len(sorted)*99+99)/100-1]
	}
	run := func(policy string) (time.Duration, uint64, uint64) {
		d := deploy(policy)
		defer d.Close()
		warm(d)
		before := d.Servers[0].CacheSnapshot()
		lat := measured(d, true)
		after := d.Servers[0].CacheSnapshot()
		return p99(lat), after.Hits - before.Hits, after.Misses - before.Misses
	}

	fifoP99, fifoHits, fifoMisses := run(core.CachePolicyFIFO)
	hotP99, hotHits, hotMisses := run(core.CachePolicyHot)

	// The replay is deterministic, so the policy comparison itself is
	// asserted on every machine: the hot policy must keep the head
	// pinned (misses under the 1% p99 boundary) while FIFO's scan
	// cascade pushes it past the boundary at the same capacity.
	total := hotHits + hotMisses
	if hotMisses*100 >= total {
		b.Fatalf("hot policy missed %d/%d measured queries (>= 1%%): head not retained at capacity %d",
			hotMisses, total, capUnits)
	}
	if fifoMisses*100 < fifoHits+fifoMisses {
		b.Fatalf("fifo missed only %d/%d measured queries (< 1%%): mix no longer thrashes FIFO at capacity %d",
			fifoMisses, fifoHits+fifoMisses, capUnits)
	}
	speedup := float64(fifoP99) / float64(hotP99)
	if cores := runtime.GOMAXPROCS(0); cores >= 4 && runtime.NumCPU() >= 4 && speedup < 2 {
		b.Fatalf("hot-cache p99 %v only %.2fx better than FIFO p99 %v, want >= 2x at equal capacity %d",
			hotP99, speedup, fifoP99, capUnits)
	}

	d := deploy(core.CachePolicyHot)
	defer d.Close()
	warm(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measured(d, false)
	}
	b.ReportMetric(float64(fifoP99.Nanoseconds()), "fifo-p99-ns")
	b.ReportMetric(float64(hotP99.Nanoseconds()), "hot-p99-ns")
	b.ReportMetric(speedup, "p99-speedup-x")
	b.ReportMetric(float64(fifoHits)/float64(fifoHits+fifoMisses), "fifo-hit-ratio")
	b.ReportMetric(float64(hotHits)/float64(total), "hot-hit-ratio")
}
