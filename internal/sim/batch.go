package sim

import (
	"context"
	"fmt"
	"io"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// BatchPoint is the measured cost of one exhaustive ParallelLevels
// query run with wave batching off and on, over the same corpus and
// the same physical fleet.
type BatchPoint struct {
	QueryKey  string
	M         int  // query keyword count
	Matches   int  // result size (identical in both modes)
	Msgs      int  // logical messages (identical in both modes)
	FramesOff int  // physical RPC frames, unbatched
	FramesOn  int  // physical RPC frames, batched
	Identical bool // byte-identical match sequences
}

// Reduction is the frames-off / frames-on ratio.
func (p BatchPoint) Reduction() float64 {
	if p.FramesOn == 0 {
		return 0
	}
	return float64(p.FramesOff) / float64(p.FramesOn)
}

// BatchStudyResult aggregates a wave-batching comparison run.
type BatchStudyResult struct {
	R      int
	Peers  int
	Points []BatchPoint
}

// BatchStudy measures how many physical RPC frames wave batching saves
// on exhaustive ParallelLevels searches when the 2^r logical vertices
// are folded onto a fleet of peers physical nodes. Each query runs
// uncached against two identically loaded deployments — one with
// batching off, one on — and the match sequences are compared
// byte-for-byte.
func BatchStudy(c *corpus.Corpus, queries []keyword.Set, r, peers, cacheCapacity int) (*BatchStudyResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sim: batch study needs queries")
	}
	deployments := make([]*Deployment, 2)
	for i, mode := range []core.BatchMode{core.BatchOff, core.BatchOn} {
		d, err := NewCustomDeployment(DeployConfig{
			R: r, Peers: peers, CacheCapacity: cacheCapacity, Batch: mode,
		})
		if err != nil {
			for _, prev := range deployments[:i] {
				prev.Close()
			}
			return nil, err
		}
		defer d.Close()
		if err := d.InsertCorpus(c); err != nil {
			return nil, err
		}
		deployments[i] = d
	}
	off, on := deployments[0], deployments[1]

	ctx := context.Background()
	opts := core.SearchOptions{Order: core.ParallelLevels, NoCache: true}
	res := &BatchStudyResult{R: r, Peers: peers}
	for _, q := range queries {
		ro, err := off.Client.SupersetSearch(ctx, q, core.All, opts)
		if err != nil {
			return nil, fmt.Errorf("unbatched search %v: %w", q, err)
		}
		rb, err := on.Client.SupersetSearch(ctx, q, core.All, opts)
		if err != nil {
			return nil, fmt.Errorf("batched search %v: %w", q, err)
		}
		res.Points = append(res.Points, BatchPoint{
			QueryKey:  q.Key(),
			M:         q.Len(),
			Matches:   len(rb.Matches),
			Msgs:      rb.Stats.Messages,
			FramesOff: ro.Stats.PhysFrames,
			FramesOn:  rb.Stats.PhysFrames,
			Identical: sameMatches(ro.Matches, rb.Matches),
		})
	}
	return res, nil
}

// sameMatches compares two match sequences field by field.
func sameMatches(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderBatchStudy prints a BatchStudyResult as a table.
func RenderBatchStudy(w io.Writer, res *BatchStudyResult) {
	fmt.Fprintf(w, "Wave batching — physical frames per exhaustive parallel search (r=%d, %d peers)\n",
		res.R, res.Peers)
	fmt.Fprintf(w, "%-28s %3s %8s %8s %10s %10s %8s %6s\n",
		"query", "m", "matches", "msgs", "frames", "frames", "reduction", "equal")
	fmt.Fprintf(w, "%-28s %3s %8s %8s %10s %10s %8s %6s\n",
		"", "", "", "(logical)", "unbatched", "batched", "", "")
	var sumOff, sumOn int
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-28s %3d %8d %8d %10d %10d %7.1fx %6v\n",
			p.QueryKey, p.M, p.Matches, p.Msgs, p.FramesOff, p.FramesOn, p.Reduction(), p.Identical)
		sumOff += p.FramesOff
		sumOn += p.FramesOn
	}
	if sumOn > 0 {
		fmt.Fprintf(w, "%-28s %3s %8s %8s %10d %10d %7.1fx\n",
			"total", "", "", "", sumOff, sumOn, float64(sumOff)/float64(sumOn))
	}
}
