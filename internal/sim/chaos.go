package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// FaultKind is one class of injected fault.
type FaultKind int

const (
	// FaultCrash crash-stops a node: sends to it fail with
	// ErrUnreachable while its tables stay bound (it may recover).
	FaultCrash FaultKind = iota
	// FaultRecover brings a crashed node back with its tables intact.
	FaultRecover
	// FaultSlow injects a fixed delivery latency in front of a node
	// (Latency 0 restores full speed).
	FaultSlow
	// FaultPartition severs the deployment's send path to a node for a
	// timed window: the node is alive but unreachable from the querying
	// side, the classic asymmetric-partition view.
	FaultPartition
	// FaultHeal restores the send path severed by FaultPartition.
	FaultHeal
	// FaultJoin adds a brand-new peer (Node is its address) to the
	// network mid-run, triggering a live index migration from its ring
	// successor. Membership events only make sense for peer-level
	// replayers (the root package's churn harness drives them over a
	// keysearch.Cluster); the vertex-mapped Deployment has fixed
	// membership, so its ReplayChaos ignores them.
	FaultJoin
	// FaultLeave departs the peer at Node gracefully: its index entries
	// drain to its ring successor and the ring splices it out.
	FaultLeave
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRecover:
		return "recover"
	case FaultSlow:
		return "slow"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultJoin:
		return "join"
	case FaultLeave:
		return "leave"
	default:
		return "unknown"
	}
}

// FaultEvent is one scheduled fault: at query boundary AtQuery (before
// the AtQuery-th search runs, counting from 0), apply Kind to Node.
type FaultEvent struct {
	AtQuery int
	Kind    FaultKind
	Node    transport.Addr
	Latency time.Duration // FaultSlow only
}

// ChaosSchedule is a fully materialized fault schedule. It is pure
// data derived from its seed: replaying it — or regenerating it from
// the same seed and config — injects the identical fault sequence.
type ChaosSchedule struct {
	Seed   int64
	Events []FaultEvent
	// PrefixEvery, when positive, makes ReplayChaos run an extra
	// prefix-class query after every PrefixEvery-th superset query
	// (under the identical fault state), recorded with a "prefix:"
	// QueryKey. Zero keeps the outcome stream superset-only, which
	// per-query prediction harnesses rely on.
	PrefixEvery int
}

// Crashed returns the set of nodes the schedule crashes and never
// recovers — the nodes that are down from their crash point onward.
func (s ChaosSchedule) Crashed() map[transport.Addr]bool {
	down := make(map[transport.Addr]bool)
	for _, ev := range s.Events {
		switch ev.Kind {
		case FaultCrash:
			down[ev.Node] = true
		case FaultRecover:
			delete(down, ev.Node)
		}
	}
	return down
}

// ChaosConfig bounds a generated fault schedule.
type ChaosConfig struct {
	// Queries is the length of the query run the schedule spans; every
	// event lands at a boundary in [0, Queries).
	Queries int
	// Nodes is the population faults are drawn from.
	Nodes []transport.Addr
	// CrashFrac is the fraction of Nodes to crash-stop at random
	// boundaries (the acceptance study uses 0.10).
	CrashFrac float64
	// Recover, when set, schedules a FaultRecover for each crash at a
	// later boundary; otherwise crashes are permanent.
	Recover bool
	// SlowFrac is the fraction of Nodes to slow down by SlowLatency.
	SlowFrac float64
	// SlowLatency is the injected per-delivery delay for slowed nodes.
	SlowLatency time.Duration
	// Partitions is the number of timed send-path partitions, each
	// lasting PartitionSpan query boundaries.
	Partitions    int
	PartitionSpan int
}

// GenerateChaos derives a fault schedule from a single seed. The same
// seed and config always yield the same schedule, so a failure report
// is reproduced by its seed alone.
func GenerateChaos(seed int64, cfg ChaosConfig) (ChaosSchedule, error) {
	if cfg.Queries < 1 {
		return ChaosSchedule{}, fmt.Errorf("sim: chaos schedule needs a positive query span")
	}
	if len(cfg.Nodes) == 0 {
		return ChaosSchedule{}, fmt.Errorf("sim: chaos schedule needs a node population")
	}
	if cfg.CrashFrac < 0 || cfg.CrashFrac > 1 || cfg.SlowFrac < 0 || cfg.SlowFrac > 1 {
		return ChaosSchedule{}, fmt.Errorf("sim: chaos fractions must be in [0, 1]")
	}
	rng := rand.New(rand.NewSource(seed))
	var events []FaultEvent

	nCrash := int(cfg.CrashFrac * float64(len(cfg.Nodes)))
	for _, vi := range pickDistinct(rng, len(cfg.Nodes), nCrash) {
		node := cfg.Nodes[vi]
		at := rng.Intn(cfg.Queries)
		events = append(events, FaultEvent{AtQuery: at, Kind: FaultCrash, Node: node})
		if cfg.Recover && at+1 < cfg.Queries {
			events = append(events, FaultEvent{
				AtQuery: at + 1 + rng.Intn(cfg.Queries-at-1),
				Kind:    FaultRecover,
				Node:    node,
			})
		}
	}

	nSlow := int(cfg.SlowFrac * float64(len(cfg.Nodes)))
	for _, vi := range pickDistinct(rng, len(cfg.Nodes), nSlow) {
		events = append(events, FaultEvent{
			AtQuery: rng.Intn(cfg.Queries),
			Kind:    FaultSlow,
			Node:    cfg.Nodes[vi],
			Latency: cfg.SlowLatency,
		})
	}

	span := cfg.PartitionSpan
	if span < 1 {
		span = 1
	}
	for i := 0; i < cfg.Partitions; i++ {
		node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
		at := rng.Intn(cfg.Queries)
		events = append(events, FaultEvent{AtQuery: at, Kind: FaultPartition, Node: node})
		if at+span < cfg.Queries {
			events = append(events, FaultEvent{AtQuery: at + span, Kind: FaultHeal, Node: node})
		}
	}

	// Stable order: boundary first, then generation order — replay
	// applies same-boundary events in one deterministic sequence.
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtQuery < events[j].AtQuery })
	return ChaosSchedule{Seed: seed, Events: events}, nil
}

// Searcher is the read API the chaos harness drives: both *core.Client
// and *core.Replicated satisfy it.
type Searcher interface {
	SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts core.SearchOptions) (core.Result, error)
	PrefixSearch(ctx context.Context, prefix string, threshold int, opts core.SearchOptions) (core.Result, error)
}

// QueryOutcome is the recorded result of one chaos-run search.
type QueryOutcome struct {
	QueryKey       string
	Err            string // empty on success
	ObjectIDs      []string
	Completeness   float64
	FailedSubtrees int
}

// ChaosReport is the outcome of one chaos replay.
type ChaosReport struct {
	Outcomes []QueryOutcome
	// Answered counts searches that returned at least one match.
	Answered int
	// Exact counts successful searches with Completeness == 1.
	Exact int
	// Degraded counts successful searches with Completeness < 1.
	Degraded int
	// Failed counts searches that returned an error.
	Failed int
}

// Fingerprint hashes the full outcome sequence — per-query errors,
// object IDs in result order, completeness and failed-subtree counts —
// so two runs can be compared byte-for-byte.
func (r *ChaosReport) Fingerprint() string {
	h := sha256.New()
	for _, o := range r.Outcomes {
		fmt.Fprintf(h, "q=%s err=%s c=%s f=%d ids=", o.QueryKey, o.Err,
			strconv.FormatFloat(o.Completeness, 'g', -1, 64), o.FailedSubtrees)
		for _, id := range o.ObjectIDs {
			h.Write([]byte(id))
			h.Write([]byte{0})
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReplayChaos runs the query sequence against s, applying the
// schedule's fault events at query boundaries. Searches run uncached
// (NoCache) so every query exercises the live wave rather than a
// result cached before the fault. The harness is deterministic: the
// in-memory network delivers synchronously and the schedule is pure
// data, so one seed reproduces the identical report (hedging, which
// races goroutines, should stay disabled in chaos policies).
func ReplayChaos(d *Deployment, s Searcher, queries []keyword.Set, sched ChaosSchedule) (*ChaosReport, error) {
	if s == nil {
		s = d.Client
	}
	ctx := context.Background()
	report := &ChaosReport{Outcomes: make([]QueryOutcome, 0, len(queries))}
	ei := 0
	for qi, q := range queries {
		for ei < len(sched.Events) && sched.Events[ei].AtQuery <= qi {
			if err := d.applyFault(sched.Events[ei]); err != nil {
				return nil, err
			}
			ei++
		}
		out := QueryOutcome{QueryKey: q.Key(), Completeness: 1}
		res, err := s.SupersetSearch(ctx, q, core.All, core.SearchOptions{NoCache: true})
		report.recordOutcome(out, res, err)

		// Scheduled interleave: also run a prefix multicast (on the
		// first word's two-character prefix) under the identical fault
		// state, so the fingerprint invariant pins the prefix class too.
		if sched.PrefixEvery > 0 && qi%sched.PrefixEvery == 0 {
			if words := q.Words(); len(words) > 0 {
				p := words[0]
				if len(p) > 2 {
					p = p[:2]
				}
				pout := QueryOutcome{QueryKey: "prefix:" + p, Completeness: 1}
				pres, perr := s.PrefixSearch(ctx, p, core.All, core.SearchOptions{NoCache: true})
				report.recordOutcome(pout, pres, perr)
			}
		}
	}
	return report, nil
}

// recordOutcome folds one search answer into the report tallies.
func (r *ChaosReport) recordOutcome(out QueryOutcome, res core.Result, err error) {
	if err != nil {
		out.Err = err.Error()
		out.Completeness = 0
		r.Failed++
	} else {
		out.Completeness = res.Completeness
		out.FailedSubtrees = res.FailedSubtrees
		out.ObjectIDs = make([]string, len(res.Matches))
		for i, m := range res.Matches {
			out.ObjectIDs[i] = m.ObjectID
		}
		if len(res.Matches) > 0 {
			r.Answered++
		}
		if res.Completeness < 1 {
			r.Degraded++
		} else {
			r.Exact++
		}
	}
	r.Outcomes = append(r.Outcomes, out)
}

// applyFault injects one scheduled event into the deployment network.
// For durable deployments the crash model sharpens: FaultCrash also
// wipes the node's in-memory tables (process death, not just a link
// cut) and FaultRecover replays the node's data directory before
// reconnecting it — so a recovered node answers from disk state, not
// from conveniently surviving memory.
func (d *Deployment) applyFault(ev FaultEvent) error {
	switch ev.Kind {
	case FaultCrash:
		d.Net.SetDown(ev.Node, true)
		if d.Durable {
			if srv := d.serverAt(ev.Node); srv != nil {
				srv.CrashReset()
			}
		}
	case FaultRecover:
		if d.Durable {
			if srv := d.serverAt(ev.Node); srv != nil {
				if _, err := srv.RecoverFromStore(); err != nil {
					return fmt.Errorf("sim: durable recover %s: %w", ev.Node, err)
				}
			}
		}
		d.Net.SetDown(ev.Node, false)
	case FaultSlow:
		d.Net.SetLatency(ev.Node, ev.Latency)
	case FaultPartition:
		// The deployment's clients and servers send with from = "" (the
		// plain Send path), so blocking ""→node severs every query-side
		// route to the node while the node itself stays up.
		d.Net.Block("", ev.Node, true)
	case FaultHeal:
		d.Net.Block("", ev.Node, false)
	}
	return nil
}

// serverAt maps a deployment address back to its server (nil when the
// address is not part of the fleet).
func (d *Deployment) serverAt(addr transport.Addr) *core.Server {
	for i, a := range d.Addrs {
		if a == addr {
			return d.Servers[i]
		}
	}
	return nil
}
