// Package sim is the experiment harness reproducing the paper's
// Section 4 evaluation: load-distribution studies (Figures 5–7) as
// offline computations over a corpus, and query-performance studies
// (Figures 8–9, Section 3.5 costs) over live in-memory deployments of
// the index.
package sim

import (
	"fmt"
	"math"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/analytic"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/invindex"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// HashSeed is the keyword-hash seed shared by all experiments so that
// every figure sees the same mapping.
const HashSeed = 20050607

// Fig5Result is the keyword-set-size distribution of Figure 5.
type Fig5Result struct {
	// Hist[s] is the number of objects with exactly s keywords.
	Hist []int
	// Mean is the average keyword-set size (the paper reports 7.3).
	Mean float64
}

// Fig5 computes the Figure 5 distribution for a corpus.
func Fig5(c *corpus.Corpus) Fig5Result {
	return Fig5Result{Hist: c.SizeHistogram(), Mean: c.MeanKeywords()}
}

// LoadScheme identifies one indexing scheme of the Figure 6 study.
type LoadScheme string

// The Figure 6 schemes.
const (
	SchemeHypercube LoadScheme = "hypercube" // the paper's index
	SchemeDHT       LoadScheme = "DHT"       // objects hashed directly to nodes
	SchemeDII       LoadScheme = "DII"       // distributed inverted index
)

// LoadCurve is one Figure 6 line: per-node loads under one scheme.
type LoadCurve struct {
	Scheme LoadScheme
	R      int
	// Loads holds the number of object references each of the 2^r
	// logical nodes stores, sorted heaviest first.
	Loads []int
	// Total is the sum of Loads.
	Total int
}

// CumulativeShare returns the fraction of total load held by the
// heaviest fracNodes fraction of nodes — points of the Figure 6
// curves. A perfectly balanced scheme returns fracNodes.
func (lc LoadCurve) CumulativeShare(fracNodes float64) float64 {
	if lc.Total == 0 || len(lc.Loads) == 0 {
		return 0
	}
	n := int(math.Round(fracNodes * float64(len(lc.Loads))))
	if n < 0 {
		n = 0
	}
	if n > len(lc.Loads) {
		n = len(lc.Loads)
	}
	sum := 0
	for _, v := range lc.Loads[:n] {
		sum += v
	}
	return float64(sum) / float64(lc.Total)
}

// Gini returns the Gini coefficient of the load distribution
// (0 = perfectly balanced, →1 = concentrated), a scalar summary used
// by tests and the ablation benches.
func (lc LoadCurve) Gini() float64 {
	n := len(lc.Loads)
	if n == 0 || lc.Total == 0 {
		return 0
	}
	// Loads are sorted descending; Gini over the sorted sequence.
	asc := make([]int, n)
	copy(asc, lc.Loads)
	sort.Ints(asc)
	cum := 0.0
	weighted := 0.0
	for i, v := range asc {
		cum += float64(v)
		weighted += float64(i+1) * float64(v)
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// Fig6Load computes one Figure 6 curve: the per-node load of the given
// scheme at dimensionality r.
func Fig6Load(c *corpus.Corpus, scheme LoadScheme, r int) (LoadCurve, error) {
	if r < 1 || r > 24 {
		return LoadCurve{}, fmt.Errorf("sim: r=%d outside the tractable range [1, 24]", r)
	}
	hasher := keyword.MustNewHasher(r, HashSeed)
	size := 1 << uint(r)
	loads := make([]int, size)
	mask := hypercube.MustNew(r).Mask()

	switch scheme {
	case SchemeHypercube:
		for _, rec := range c.Records() {
			loads[hasher.Vertex(rec.Keywords)]++
		}
	case SchemeDHT:
		for _, rec := range c.Records() {
			loads[hypercube.Vertex(dht.HashString("obj:"+rec.ID))&mask]++
		}
	case SchemeDII:
		for w, freq := range c.KeywordFrequencies() {
			loads[invindex.NodeFor(w, r)] += freq
		}
	default:
		return LoadCurve{}, fmt.Errorf("sim: unknown load scheme %q", scheme)
	}

	total := 0
	for _, v := range loads {
		total += v
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	return LoadCurve{Scheme: scheme, R: r, Loads: loads, Total: total}, nil
}

// Fig7Result holds one Figure 7 chart: node and object distributions
// over the number of one-bits x for a fixed r.
type Fig7Result struct {
	R int
	// NodePMF[x] is the fraction of hypercube vertices with x one-bits
	// (binomial with mean r/2).
	NodePMF []float64
	// ObjectPMF[x] is the measured fraction of objects indexed at
	// vertices with x one-bits.
	ObjectPMF []float64
	// AnalyticObjectPMF[x] is the Equation (1) prediction derived from
	// the corpus's keyword-set-size distribution.
	AnalyticObjectPMF []float64
}

// Fig7 computes the object-versus-node distribution study for one r.
func Fig7(c *corpus.Corpus, r int) (Fig7Result, error) {
	if r < 1 || r > 64 {
		return Fig7Result{}, fmt.Errorf("sim: r=%d out of range", r)
	}
	hasher := keyword.MustNewHasher(r, HashSeed)
	res := Fig7Result{
		R:                 r,
		NodePMF:           make([]float64, r+1),
		ObjectPMF:         make([]float64, r+1),
		AnalyticObjectPMF: make([]float64, r+1),
	}
	for x := 0; x <= r; x++ {
		p, err := analytic.NodeOnesPMF(r, x)
		if err != nil {
			return Fig7Result{}, err
		}
		res.NodePMF[x] = p
	}
	for _, rec := range c.Records() {
		res.ObjectPMF[hasher.Vertex(rec.Keywords).OnesCount()]++
	}
	n := float64(c.Len())
	for x := range res.ObjectPMF {
		res.ObjectPMF[x] /= n
	}
	sizePMF := c.SizePMF()
	for x := 0; x <= r; x++ {
		p, err := analytic.ObjectOnesPMF(r, sizePMF, x)
		if err != nil {
			return Fig7Result{}, err
		}
		res.AnalyticObjectPMF[x] = p
	}
	return res, nil
}

// TotalVariation returns ½·Σ|p−q| between two distributions, used to
// quantify how close the object distribution is to the node
// distribution (the paper's criterion for choosing r).
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var pv, qv float64
		if i < len(p) {
			pv = p[i]
		}
		if i < len(q) {
			qv = q[i]
		}
		sum += math.Abs(pv - qv)
	}
	return sum / 2
}
