package sim

import (
	"math"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

func deploymentAddrs(r int) []transport.Addr {
	nodes := make([]transport.Addr, 1<<uint(r))
	for v := range nodes {
		nodes[v] = transport.Addr("v" + strconv.Itoa(v))
	}
	return nodes
}

func TestGenerateChaosDeterministicAndValidated(t *testing.T) {
	nodes := deploymentAddrs(4)
	cfg := ChaosConfig{
		Queries: 50, Nodes: nodes,
		CrashFrac: 0.25, Recover: true,
		SlowFrac: 0.2, SlowLatency: time.Millisecond,
		Partitions: 2, PartitionSpan: 5,
	}
	a, err := GenerateChaos(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChaos(11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and config must yield the identical schedule")
	}
	c, err := GenerateChaos(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds yielded the same schedule")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i-1].AtQuery > a.Events[i].AtQuery {
			t.Fatalf("events out of boundary order at %d: %+v", i, a.Events)
		}
	}

	for _, bad := range []ChaosConfig{
		{Queries: 0, Nodes: nodes},
		{Queries: 10},
		{Queries: 10, Nodes: nodes, CrashFrac: 1.5},
		{Queries: 10, Nodes: nodes, SlowFrac: -0.1},
	} {
		if _, err := GenerateChaos(1, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

// TestChaosReplayDeterministicWithExactSubtreeCounts is the seeded
// chaos replay check: one seed reproduces a byte-identical outcome
// sequence across two fresh deployments, and every degraded answer
// reports exactly the failed subtrees the schedule predicts. With one
// node per vertex the prediction is closed-form — the wave regenerates
// a failed vertex's children locally, so each downed non-root vertex of
// the query's subhypercube H_r(root) costs exactly one failed subtree —
// which pins Completeness to (|H| - failed)/|H|, the Lemma 3.2 loss
// accounting.
func TestChaosReplayDeterministicWithExactSubtreeCounts(t *testing.T) {
	const (
		r         = 6
		chaosSeed = 7
	)
	c := testCorpus(t, 800)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 200, Templates: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 8)
	if len(queries) < 12 {
		t.Fatalf("too few study queries: %d", len(queries))
	}

	cfg := ChaosConfig{
		Queries: len(queries), Nodes: deploymentAddrs(r),
		CrashFrac: 0.15, Recover: true,
		Partitions: 2, PartitionSpan: 6,
	}
	sched, err := GenerateChaos(chaosSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sched2, _ := GenerateChaos(chaosSeed, cfg); !reflect.DeepEqual(sched, sched2) {
		t.Fatal("schedule not reproducible from its seed")
	}

	run := func() *ChaosReport {
		d, err := NewDeployment(r, 64)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.InsertCorpus(c); err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayChaos(d, nil, queries, sched)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep1, rep2 := run(), run()
	if rep1.Fingerprint() != rep2.Fingerprint() {
		t.Error("same seed produced different outcome fingerprints")
	}
	if rep1.Degraded == 0 {
		t.Error("schedule injected no observable degradation — the test exercises nothing")
	}

	// Recompute the fault state at every boundary and check the exact
	// failed-subtree count of each outcome against it.
	cube, err := hypercube.New(r)
	if err != nil {
		t.Fatal(err)
	}
	hasher := keyword.MustNewHasher(r, HashSeed)
	crashed := make(map[transport.Addr]bool)
	parted := make(map[transport.Addr]bool)
	down := func(v hypercube.Vertex) bool {
		a := transport.Addr("v" + strconv.Itoa(int(v)))
		return crashed[a] || parted[a]
	}
	ei := 0
	for qi, q := range queries {
		for ei < len(sched.Events) && sched.Events[ei].AtQuery <= qi {
			ev := sched.Events[ei]
			ei++
			switch ev.Kind {
			case FaultCrash:
				crashed[ev.Node] = true
			case FaultRecover:
				delete(crashed, ev.Node)
			case FaultPartition:
				parted[ev.Node] = true
			case FaultHeal:
				delete(parted, ev.Node)
			}
		}
		root := hasher.Vertex(q)
		out := rep1.Outcomes[qi]
		if down(root) {
			if out.Err == "" {
				t.Errorf("query %d (%s): root %d down but the search succeeded", qi, out.QueryKey, root)
			}
			continue
		}
		if out.Err != "" {
			t.Errorf("query %d (%s): unexpected error %q", qi, out.QueryKey, out.Err)
			continue
		}
		sub := cube.SubcubeVertices(root)
		want := 0
		for _, v := range sub {
			if v != root && down(v) {
				want++
			}
		}
		if out.FailedSubtrees != want {
			t.Errorf("query %d (%s): FailedSubtrees = %d, schedule predicts %d",
				qi, out.QueryKey, out.FailedSubtrees, want)
		}
		wantComp := float64(len(sub)-want) / float64(len(sub))
		if want == 0 {
			wantComp = 1
		}
		if math.Abs(out.Completeness-wantComp) > 1e-12 {
			t.Errorf("query %d (%s): Completeness = %v, want %v", qi, out.QueryKey, out.Completeness, wantComp)
		}
	}
}

// TestChaosReplicatedAvailability is the headline resilience study:
// under a 10% node-crash schedule on the paper's query workload, the
// replicated index behind the resilience middleware keeps nearly every
// query answered while the unprotected single-instance baseline loses
// queries outright; every answer missing matches is flagged by
// Completeness < 1; and the resilience counters reconcile exactly with
// the injected fault schedule.
func TestChaosReplicatedAvailability(t *testing.T) {
	const (
		r         = 7
		chaosSeed = 42
	)
	c := testCorpus(t, 3000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 400, Templates: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 25)
	if len(queries) < 40 {
		t.Fatalf("too few study queries: %d", len(queries))
	}

	// Ground-truth match counts from the corpus itself.
	expected := make([]int, len(queries))
	for i, q := range queries {
		for _, rec := range c.Records() {
			if q.SubsetOf(rec.Keywords) {
				expected[i]++
			}
		}
	}

	nodes := deploymentAddrs(r)
	sched, err := GenerateChaos(chaosSeed, ChaosConfig{
		Queries: len(queries), Nodes: nodes, CrashFrac: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	crashed := sched.Crashed()
	if want := int(0.10 * float64(len(nodes))); len(crashed) != want {
		t.Fatalf("schedule crashed %d nodes, want %d", len(crashed), want)
	}

	// Unprotected baseline: one index instance, no middleware, its own
	// network so its traffic stays isolated from the protected run.
	base, err := NewDeployment(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if err := base.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	baseRep, err := ReplayChaos(base, nil, queries, sched)
	if err != nil {
		t.Fatal(err)
	}
	if baseRep.Failed+baseRep.Degraded == 0 {
		t.Fatal("the schedule did not degrade the baseline — the comparison is vacuous")
	}

	// Protected run: two index instances plus the resilience middleware.
	// The policy is tuned so the counters reconcile exactly: with a
	// 1-failure threshold and an effectively permanent open window, the
	// first contact of each crashed destination costs one wire failure,
	// opens the breaker, and spends one (zero-delay) retry that is
	// short-circuited; every later contact short-circuits without
	// touching the wire. Hedging stays off — it races goroutines, which
	// chaos runs must not.
	pol := resilience.Policy{
		MaxAttempts: 2,
		Breaker: resilience.BreakerPolicy{
			FailureThreshold: 1,
			OpenFor:          time.Hour,
			HalfOpenProbes:   1,
		},
	}
	reg := telemetry.New(256)
	prot, err := NewResilientDeployment(r, 0, 2, reg, &pol)
	if err != nil {
		t.Fatal(err)
	}
	defer prot.Close()
	if err := prot.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	statsBefore := prot.Net.Stats()
	protRep, err := ReplayChaos(prot, prot.Index, queries, sched)
	if err != nil {
		t.Fatal(err)
	}
	wireFailures := prot.Net.Stats().Failures - statsBefore.Failures

	// Availability: ≥ 99% of queries answered, and never worse than the
	// unprotected baseline.
	avail := float64(protRep.Answered) / float64(len(queries))
	if avail < 0.99 {
		t.Errorf("protected availability = %.3f (%d/%d answered), want >= 0.99",
			avail, protRep.Answered, len(queries))
	}
	if protRep.Answered < baseRep.Answered {
		t.Errorf("protected answered %d < baseline %d", protRep.Answered, baseRep.Answered)
	}

	// Honesty: an answer missing matches must carry Completeness < 1,
	// and a complete answer must be exact.
	for i, out := range protRep.Outcomes {
		if out.Err != "" {
			continue
		}
		if len(out.ObjectIDs) < expected[i] && out.Completeness >= 1 {
			t.Errorf("query %d (%s): %d/%d matches but Completeness = %v — silent loss",
				i, out.QueryKey, len(out.ObjectIDs), expected[i], out.Completeness)
		}
		if out.Completeness >= 1 && len(out.ObjectIDs) != expected[i] {
			t.Errorf("query %d (%s): complete answer has %d matches, corpus says %d",
				i, out.QueryKey, len(out.ObjectIDs), expected[i])
		}
	}

	// Counter reconciliation against the schedule: each crashed
	// destination that the run contacted costs exactly one wire failure,
	// one breaker open, and one short-circuited retry; nothing hedges.
	snap := reg.Snapshot()
	retries := snap.Counters["resilience_retries_total"]
	opens := snap.Counters["resilience_breaker_opens_total"]
	shorts := snap.Counters["resilience_breaker_short_circuits_total"]
	if got := snap.Counters["resilience_hedges_total"]; got != 0 {
		t.Errorf("hedges = %d, want 0 (hedging disabled)", got)
	}
	if opens == 0 {
		t.Error("no breaker ever opened — the chaos schedule never bit")
	}
	if retries != opens {
		t.Errorf("retries = %d, opens = %d — each first contact of a crashed node costs exactly one of each", retries, opens)
	}
	if retries != wireFailures {
		t.Errorf("retries = %d, wire failures = %d — every wire failure funds exactly one retry", retries, wireFailures)
	}
	if opens > uint64(len(crashed)) {
		t.Errorf("opens = %d exceeds the %d crashed nodes", opens, len(crashed))
	}
	if shorts < opens {
		t.Errorf("short circuits = %d < opens = %d — every open breaker short-circuits at least its own retry", shorts, opens)
	}
	// Exactly the crashed destinations' breakers are open.
	var openBreakers int
	for _, a := range nodes {
		if prot.Resilience.BreakerState(a) == resilience.Open {
			openBreakers++
			if !crashed[a] {
				t.Errorf("breaker open for healthy node %s", a)
			}
		}
	}
	if uint64(openBreakers) != opens {
		t.Errorf("open breakers = %d, opens counter = %d", openBreakers, opens)
	}
	if got := snap.Gauges["resilience_breaker_state"]; got != int64(openBreakers) {
		t.Errorf("resilience_breaker_state gauge = %d, want %d", got, openBreakers)
	}
}
