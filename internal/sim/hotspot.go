package sim

import (
	"fmt"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/invindex"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// HotSpotSpreadReplicas is the soft-replica count the hot-spot study
// attributes the "hypercube+hot" row with — matching the k=2 the
// recorded Zipf storm study deploys.
const HotSpotSpreadReplicas = 2

// HotSpotResult quantifies the Section 3.4 hot-spot discussion: how
// query traffic concentrates on responsible nodes under each scheme.
// For the hypercube scheme a query's primary load lands on its root
// node F_h(K); for the inverted index every keyword of the query loads
// that keyword's single node.
//
// The paper is candid that the hypercube scheme has its own residual
// hot spot — "raising a potential hot spot to the nodes handling
// exactly some very popular keyword sets" — and relies on caching and
// query expansion to absorb it. This study exposes both effects: the
// hypercube's hottest root carries roughly the most popular query
// template's share of traffic (repeats of one exact keyword set,
// which the Figure 9 cache serves from one node), while DII
// additionally aggregates every query that merely CONTAINS a popular
// keyword onto that keyword's node.
type HotSpotResult struct {
	R int
	// HyperLoads / DIILoads are per-node query-arrival counts, sorted
	// heaviest first.
	Hyper LoadCurve
	DII   LoadCurve
	// HyperTopNodeShare / DIITopNodeShare is the fraction of total
	// arrivals absorbed by the single hottest node.
	HyperTopNodeShare float64
	DIITopNodeShare   float64
	// TopTemplateShare is the traffic share of the most popular query
	// template — the irreducible repeat load any per-set scheme
	// concentrates on one root.
	TopTemplateShare float64
	// HyperServingNodes / DIIServingNodes count nodes receiving any
	// arrivals.
	HyperServingNodes int
	DIIServingNodes   int
	// Spread models the hot-vertex layer on top of the hypercube
	// scheme: once a template's root has absorbed
	// core.DefaultHotPromoteThreshold arrivals it is promoted, and the
	// remaining arrivals rotate round-robin across the owner and its
	// HotSpotSpreadReplicas soft replicas (the client's spreading
	// discipline), with replica nodes drawn from the same deterministic
	// candidate walk the live layer places copies with.
	Spread             LoadCurve
	SpreadTopNodeShare float64
	SpreadServingNodes int
}

// HotSpots replays a query log offline, attributing each query to the
// nodes that must serve it first under each scheme.
func HotSpots(log *corpus.QueryLog, r int) (HotSpotResult, error) {
	if r < 1 || r > 24 {
		return HotSpotResult{}, fmt.Errorf("sim: r=%d outside the tractable range [1, 24]", r)
	}
	hasher := keyword.MustNewHasher(r, HashSeed)
	size := 1 << uint(r)
	hyper := make([]int, size)
	dii := make([]int, size)
	spread := make([]int, size)
	// Per-template promotion state for the spread attribution: arrival
	// count so far and the round-robin rotation slot once promoted.
	type hotState struct {
		arrivals int
		next     int
		targets  []hypercube.Vertex // owner first, then replicas
	}
	hot := make(map[int]*hotState)
	for _, q := range log.Queries() {
		root := hasher.Vertex(q.Keywords)
		hyper[root]++
		for _, w := range q.Keywords.Words() {
			dii[invindex.NodeFor(w, r)]++
		}
		st, ok := hot[q.Template]
		if !ok {
			st = &hotState{}
			hot[q.Template] = st
		}
		st.arrivals++
		if st.arrivals <= core.DefaultHotPromoteThreshold {
			spread[root]++
			continue
		}
		if st.targets == nil {
			st.targets = spreadTargets(root, r)
		}
		spread[st.targets[st.next%len(st.targets)]]++
		st.next++
	}
	res := HotSpotResult{R: r}
	res.Hyper = curveFromLoads(SchemeHypercube, r, hyper)
	res.DII = curveFromLoads(SchemeDII, r, dii)
	res.Spread = curveFromLoads(SchemeHypercube, r, spread)
	if res.Hyper.Total > 0 {
		res.HyperTopNodeShare = float64(res.Hyper.Loads[0]) / float64(res.Hyper.Total)
	}
	if res.DII.Total > 0 {
		res.DIITopNodeShare = float64(res.DII.Loads[0]) / float64(res.DII.Total)
	}
	if res.Spread.Total > 0 {
		res.SpreadTopNodeShare = float64(res.Spread.Loads[0]) / float64(res.Spread.Total)
	}
	res.TopTemplateShare = log.TopShare(1)
	for _, v := range res.Hyper.Loads {
		if v > 0 {
			res.HyperServingNodes++
		}
	}
	for _, v := range res.DII.Loads {
		if v > 0 {
			res.DIIServingNodes++
		}
	}
	for _, v := range res.Spread.Loads {
		if v > 0 {
			res.SpreadServingNodes++
		}
	}
	return res, nil
}

// spreadTargets returns the rotation targets of a promoted root: the
// owner vertex followed by its soft-replica vertices, drawn from the
// live layer's deterministic candidate walk (dedup, owner skipped).
func spreadTargets(root hypercube.Vertex, r int) []hypercube.Vertex {
	targets := []hypercube.Vertex{root}
	seen := map[hypercube.Vertex]struct{}{root: {}}
	for _, cand := range core.SoftReplicaCandidates(root, r, HotSpotSpreadReplicas) {
		if len(targets) == HotSpotSpreadReplicas+1 {
			break
		}
		if _, dup := seen[cand]; dup {
			continue
		}
		seen[cand] = struct{}{}
		targets = append(targets, cand)
	}
	return targets
}

func curveFromLoads(scheme LoadScheme, r int, loads []int) LoadCurve {
	total := 0
	for _, v := range loads {
		total += v
	}
	sorted := make([]int, len(loads))
	copy(sorted, loads)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	return LoadCurve{Scheme: scheme, R: r, Loads: sorted, Total: total}
}

// RenderHotSpots prints the query-load concentration comparison.
func RenderHotSpots(w interface{ Write([]byte) (int, error) }, res HotSpotResult) {
	fmt.Fprintf(w, "Hot spots (r=%d) — query-load concentration (Section 3.4)\n", res.R)
	fmt.Fprintf(w, "top query template carries %.1f%% of traffic\n", 100*res.TopTemplateShare)
	fmt.Fprintf(w, "%-12s %-12s %-12s %-12s %-10s %s\n",
		"scheme", "top node", "top 1%", "top 10%", "Gini", "serving nodes")
	for _, row := range []struct {
		name    string
		lc      LoadCurve
		top     float64
		serving int
	}{
		{"hypercube", res.Hyper, res.HyperTopNodeShare, res.HyperServingNodes},
		{"hyper+hot", res.Spread, res.SpreadTopNodeShare, res.SpreadServingNodes},
		{"DII", res.DII, res.DIITopNodeShare, res.DIIServingNodes},
	} {
		fmt.Fprintf(w, "%-12s %-11.2f%% %-11.1f%% %-11.1f%% %-10.3f %d\n",
			row.name, 100*row.top,
			100*row.lc.CumulativeShare(0.01),
			100*row.lc.CumulativeShare(0.10),
			row.lc.Gini(),
			row.serving)
	}
	fmt.Fprintln(w, "note: the hypercube top node ≈ the top template's repeat traffic —")
	fmt.Fprintln(w, "the residual hot spot §3.4 concedes and the Figure 9 cache absorbs;")
	fmt.Fprintln(w, "DII additionally funnels every query containing a popular keyword")
	fmt.Fprintln(w, "through that keyword's single node. hyper+hot is the hypercube with")
	fmt.Fprintf(w, "the hot-vertex layer: roots past %d arrivals spread their residual\n",
		core.DefaultHotPromoteThreshold)
	fmt.Fprintf(w, "traffic round-robin across the owner and %d soft replicas.\n",
		HotSpotSpreadReplicas)
}
