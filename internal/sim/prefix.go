package sim

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
)

// PrefixPoint is the measured cost of one prefix query answered two
// ways over the same loaded deployment: as the constrained multicast
// (one SBT branch per candidate dimension, overlap removed by
// exclusion masks) and as the naive per-dimension fan-out a client
// without branch exclusion would issue — one independent single-mask
// query per candidate dimension with client-side dedup, the
// per-keyword-index cost model of the paper's Figure 6 DII baseline.
type PrefixPoint struct {
	Prefix  string
	Dims    int // candidate dimensions in the vocabulary-derived mask
	Matches int
	// Identical reports that both strategies returned the same
	// object-ID set (after deduplicating the fan-out's overlap).
	Identical bool

	NodesMulti  int
	MsgsMulti   int
	FramesMulti int
	NodesNaive  int
	MsgsNaive   int
	FramesNaive int
}

// MsgReduction is the naive/multicast logical-message ratio.
func (p PrefixPoint) MsgReduction() float64 {
	if p.MsgsMulti == 0 {
		return 0
	}
	return float64(p.MsgsNaive) / float64(p.MsgsMulti)
}

// PrefixStudyResult aggregates a prefix cost-study run.
type PrefixStudyResult struct {
	R      int
	Vocab  int // distinct normalized keywords in the corpus
	Points []PrefixPoint
}

// PrefixStudyPrefixes derives a deterministic prefix workload from the
// corpus: the n most frequent keyword prefixes of length plen, by
// total keyword occurrences, ties broken lexicographically.
func PrefixStudyPrefixes(c *corpus.Corpus, plen, n int) []string {
	freq := map[string]int{}
	for _, r := range c.Records() {
		for _, w := range r.Keywords.Words() {
			if len(w) >= plen {
				freq[w[:plen]]++
			}
		}
	}
	prefixes := make([]string, 0, len(freq))
	for p := range freq {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if freq[prefixes[i]] != freq[prefixes[j]] {
			return freq[prefixes[i]] > freq[prefixes[j]]
		}
		return prefixes[i] < prefixes[j]
	})
	if len(prefixes) > n {
		prefixes = prefixes[:n]
	}
	return prefixes
}

// PrefixStudy measures what the exclusion-mask multicast saves over
// naive per-dimension fan-out. Every query runs uncached and
// exhaustively against one loaded 2^r deployment; both strategies must
// return the same object-ID set or the point is marked non-identical.
func PrefixStudy(c *corpus.Corpus, prefixes []string, r int) (*PrefixStudyResult, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("sim: prefix study needs prefixes")
	}
	d, err := NewCustomDeployment(DeployConfig{R: r})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		return nil, err
	}

	// The deployment vocabulary, for the mask the client would compute.
	seen := map[string]bool{}
	var vocab []string
	for _, rec := range c.Records() {
		for _, w := range rec.Keywords.Words() {
			if !seen[w] {
				seen[w] = true
				vocab = append(vocab, w)
			}
		}
	}

	ctx := context.Background()
	opts := core.SearchOptions{Order: core.ParallelLevels, NoCache: true}
	res := &PrefixStudyResult{R: r, Vocab: len(vocab)}
	for _, prefix := range prefixes {
		mask := d.Hasher.PrefixMask(vocab, prefix)
		if mask == 0 {
			continue // no vocabulary word starts with it: nothing to query
		}
		multi, err := d.Client.PrefixSearchMasked(ctx, prefix, mask, core.All, opts)
		if err != nil {
			return nil, fmt.Errorf("prefix multicast %q: %w", prefix, err)
		}
		point := PrefixPoint{
			Prefix:      prefix,
			Dims:        bits.OnesCount64(mask),
			Matches:     len(multi.Matches),
			NodesMulti:  multi.Stats.NodesContacted,
			MsgsMulti:   multi.Stats.Messages,
			FramesMulti: multi.Stats.PhysFrames,
		}
		// Naive fan-out: one whole-branch query per candidate dimension,
		// overlap (vertices with several candidate bits) deduplicated on
		// the client like a DII reader merging per-keyword postings.
		union := map[string]bool{}
		var naive core.Stats
		for m := mask; m != 0; m &= m - 1 {
			one, err := d.Client.PrefixSearchMasked(ctx, prefix, m&-m, core.All, opts)
			if err != nil {
				return nil, fmt.Errorf("prefix fan-out %q dim mask %#x: %w", prefix, m&-m, err)
			}
			naive.Add(one.Stats)
			for _, match := range one.Matches {
				union[match.ObjectID] = true
			}
		}
		point.NodesNaive = naive.NodesContacted
		point.MsgsNaive = naive.Messages
		point.FramesNaive = naive.PhysFrames
		point.Identical = len(union) == len(multi.Matches)
		for _, match := range multi.Matches {
			if !union[match.ObjectID] {
				point.Identical = false
			}
		}
		res.Points = append(res.Points, point)
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("sim: no study prefix matched the vocabulary")
	}
	return res, nil
}

// RenderPrefixStudy prints a PrefixStudyResult as a table.
func RenderPrefixStudy(w io.Writer, res *PrefixStudyResult) {
	fmt.Fprintf(w, "Prefix multicast vs per-dimension fan-out (r=%d, %d-word vocabulary)\n", res.R, res.Vocab)
	fmt.Fprintf(w, "%-10s %5s %8s %8s %8s %8s %8s %9s %6s\n",
		"prefix", "dims", "matches", "nodes", "msgs", "nodes", "msgs", "reduction", "equal")
	fmt.Fprintf(w, "%-10s %5s %8s %8s %8s %8s %8s %9s %6s\n",
		"", "", "", "multi", "multi", "naive", "naive", "(msgs)", "")
	var sumMulti, sumNaive int
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10s %5d %8d %8d %8d %8d %8d %8.1fx %6v\n",
			p.Prefix, p.Dims, p.Matches, p.NodesMulti, p.MsgsMulti,
			p.NodesNaive, p.MsgsNaive, p.MsgReduction(), p.Identical)
		sumMulti += p.MsgsMulti
		sumNaive += p.MsgsNaive
	}
	if sumMulti > 0 {
		fmt.Fprintf(w, "%-10s %5s %8s %8s %8d %8s %8d %8.1fx\n",
			"total", "", "", "", sumMulti, "", sumNaive, float64(sumNaive)/float64(sumMulti))
	}
}
