package sim

import (
	"testing"
)

// TestPrefixSmoke runs the prefix cost study end to end on a small
// fleet and checks its invariants: both strategies agree on every
// answer set, the multicast never costs more than the fan-out, and on
// multi-dimension prefixes the exclusion masks save messages overall
// (the overlap the naive fan-out pays for twice). Wired into
// `make prefix-smoke`.
func TestPrefixSmoke(t *testing.T) {
	c := testCorpus(t, 600)
	prefixes := PrefixStudyPrefixes(c, 3, 6)
	prefixes = append(prefixes, PrefixStudyPrefixes(c, 2, 2)...)
	if len(prefixes) < 4 {
		t.Fatalf("corpus yielded only %d study prefixes", len(prefixes))
	}

	res, err := PrefixStudy(c, prefixes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("study produced no points")
	}
	var sumMulti, sumNaive, multiDim int
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("prefix %q: multicast and fan-out answer sets diverge", p.Prefix)
		}
		if p.NodesMulti > p.NodesNaive || p.MsgsMulti > p.MsgsNaive {
			t.Errorf("prefix %q: multicast (%d nodes, %d msgs) costs more than fan-out (%d nodes, %d msgs)",
				p.Prefix, p.NodesMulti, p.MsgsMulti, p.NodesNaive, p.MsgsNaive)
		}
		if p.Dims > 1 {
			multiDim++
			if p.MsgsMulti >= p.MsgsNaive {
				t.Errorf("prefix %q over %d dims: no message saving (%d vs %d)",
					p.Prefix, p.Dims, p.MsgsMulti, p.MsgsNaive)
			}
		}
		sumMulti += p.MsgsMulti
		sumNaive += p.MsgsNaive
	}
	if multiDim == 0 {
		t.Error("no study prefix spanned more than one dimension; the comparison is vacuous")
	}
	if sumMulti >= sumNaive {
		t.Errorf("total messages: multicast %d >= naive fan-out %d", sumMulti, sumNaive)
	}

	if _, err := PrefixStudy(c, nil, 8); err == nil {
		t.Error("empty prefix list accepted")
	}
	if _, err := PrefixStudy(c, []string{"zzzzzzz-no-such"}, 8); err == nil {
		t.Error("vocabulary-free prefix list accepted")
	}
}
