package sim

import (
	"testing"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
)

// TestChaosFingerprintInvariantUnderSharding replays one seeded fault
// schedule against deployments spanning the server tuning matrix
// {single lock, 8 shards} × {sequential, parallel scans} on a folded
// 16-peer fleet, and requires byte-identical outcome fingerprints.
// Sharding and scan parallelism must be invisible in every observable
// — answers, errors, completeness, failed subtrees — even while nodes
// crash, recover, and partition mid-run.
func TestChaosFingerprintInvariantUnderSharding(t *testing.T) {
	const (
		r         = 6
		peers     = 16
		chaosSeed = 7
	)
	c := testCorpus(t, 800)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 200, Templates: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 8)
	if len(queries) < 12 {
		t.Fatalf("too few study queries: %d", len(queries))
	}

	// The schedule faults physical peers, so its node list is the folded
	// fleet's address list, not the 2^r logical vertices.
	d0, err := NewCustomDeployment(DeployConfig{R: r, Peers: peers, Shards: 1, ScanParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodes := d0.Addrs
	sched, err := GenerateChaos(chaosSeed, ChaosConfig{
		Queries: len(queries), Nodes: nodes,
		CrashFrac: 0.2, Recover: true,
		Partitions: 2, PartitionSpan: 6,
	})
	if err != nil {
		d0.Close()
		t.Fatal(err)
	}

	run := func(d *Deployment) string {
		defer d.Close()
		if err := d.InsertCorpus(c); err != nil {
			t.Fatal(err)
		}
		sched.PrefixEvery = 4 // pin the prefix class in the fingerprint too
		rep, err := ReplayChaos(d, nil, queries, sched)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded+rep.Failed == 0 {
			t.Fatal("schedule injected no observable degradation — the comparison is vacuous")
		}
		return rep.Fingerprint()
	}

	baseline := run(d0)
	for _, cfg := range []struct {
		shards  int
		scanPar int
	}{
		{8, 1},
		{1, 8},
		{8, 8},
	} {
		d, err := NewCustomDeployment(DeployConfig{
			R: r, Peers: peers,
			Shards: cfg.shards, ScanParallelism: cfg.scanPar,
			Batch: core.BatchOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := run(d); got != baseline {
			t.Errorf("shards=%d scanPar=%d: fingerprint %s differs from single-lock baseline %s",
				cfg.shards, cfg.scanPar, got, baseline)
		}
	}
}
