package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/corpus"
)

// testCorpus builds a moderate corpus shared by the sim tests.
func testCorpus(t testing.TB, objects int) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Objects: objects, VocabSize: 8000, Seed: 1})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	return c
}

func TestFig5MeanMatchesPaper(t *testing.T) {
	c := testCorpus(t, 20000)
	res := Fig5(c)
	if res.Mean < 6.8 || res.Mean > 7.8 {
		t.Errorf("mean = %.2f, want ≈ 7.3", res.Mean)
	}
	total := 0
	for _, n := range res.Hist {
		total += n
	}
	if total != c.Len() {
		t.Errorf("histogram total %d != %d", total, c.Len())
	}
}

func TestFig6HypercubeBeatsDII(t *testing.T) {
	c := testCorpus(t, 20000)
	hyper, err := Fig6Load(c, SchemeHypercube, 10)
	if err != nil {
		t.Fatal(err)
	}
	dii, err := Fig6Load(c, SchemeDII, 10)
	if err != nil {
		t.Fatal(err)
	}
	dht, err := Fig6Load(c, SchemeDHT, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 6 ordering: DII is far more skewed than the
	// hypercube scheme, which is close to direct DHT hashing at r=10.
	if hyper.Gini() >= dii.Gini() {
		t.Errorf("hypercube Gini %.3f not better than DII %.3f", hyper.Gini(), dii.Gini())
	}
	if dii.CumulativeShare(0.01) < 3*hyper.CumulativeShare(0.01) {
		t.Errorf("DII top-1%% share %.3f vs hypercube %.3f — expected strong concentration for DII",
			dii.CumulativeShare(0.01), hyper.CumulativeShare(0.01))
	}
	// At r = 10 the hypercube scheme should be within a modest factor
	// of plain DHT balance.
	if hyper.Gini() > dht.Gini()+0.35 {
		t.Errorf("hypercube Gini %.3f much worse than DHT %.3f at r=10", hyper.Gini(), dht.Gini())
	}
}

func TestFig6LoadBalanceBestNearR10(t *testing.T) {
	// The paper finds load balance improves up to r ≈ 10 then degrades.
	c := testCorpus(t, 20000)
	gini := map[int]float64{}
	for _, r := range []int{6, 10, 16} {
		lc, err := Fig6Load(c, SchemeHypercube, r)
		if err != nil {
			t.Fatal(err)
		}
		gini[r] = lc.Gini()
	}
	if gini[10] >= gini[16] {
		t.Errorf("gini r=10 (%.3f) should beat r=16 (%.3f)", gini[10], gini[16])
	}
}

func TestFig6TotalsConserveLoad(t *testing.T) {
	c := testCorpus(t, 5000)
	hyper, _ := Fig6Load(c, SchemeHypercube, 8)
	if hyper.Total != c.Len() {
		t.Errorf("hypercube total = %d, want %d (one entry per object)", hyper.Total, c.Len())
	}
	dii, _ := Fig6Load(c, SchemeDII, 8)
	wantDII := 0
	for _, f := range c.KeywordFrequencies() {
		wantDII += f
	}
	if dii.Total != wantDII {
		t.Errorf("DII total = %d, want %d (one entry per keyword occurrence)", dii.Total, wantDII)
	}
	if dii.Total <= hyper.Total {
		t.Error("DII should store strictly more references than the hypercube scheme")
	}
}

func TestFig6Validation(t *testing.T) {
	c := testCorpus(t, 100)
	if _, err := Fig6Load(c, SchemeHypercube, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := Fig6Load(c, LoadScheme("bogus"), 8); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestCumulativeShareBounds(t *testing.T) {
	lc := LoadCurve{Loads: []int{5, 3, 2}, Total: 10}
	if got := lc.CumulativeShare(0); got != 0 {
		t.Errorf("share(0) = %g", got)
	}
	if got := lc.CumulativeShare(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("share(1) = %g", got)
	}
	if got := lc.CumulativeShare(1.0 / 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("share(1/3) = %g, want 0.5", got)
	}
}

func TestGiniExtremes(t *testing.T) {
	balanced := LoadCurve{Loads: []int{5, 5, 5, 5}, Total: 20}
	if g := balanced.Gini(); math.Abs(g) > 1e-9 {
		t.Errorf("balanced Gini = %g", g)
	}
	concentrated := LoadCurve{Loads: []int{20, 0, 0, 0}, Total: 20}
	if g := concentrated.Gini(); g < 0.7 {
		t.Errorf("concentrated Gini = %g", g)
	}
}

func TestFig7ObjectCurveCentersByMapping(t *testing.T) {
	c := testCorpus(t, 20000)
	res, err := Fig7(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pmf := range [][]float64{res.NodePMF, res.ObjectPMF, res.AnalyticObjectPMF} {
		sum := 0.0
		for _, p := range pmf {
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("PMF sums to %g", sum)
		}
	}
	// The empirical object distribution must track the Equation (1)
	// prediction closely.
	if tv := TotalVariation(res.ObjectPMF, res.AnalyticObjectPMF); tv > 0.02 {
		t.Errorf("object PMF deviates from Eq.(1) by TV %.4f", tv)
	}
	// Node distribution peaks at r/2 = 5.
	peak := 0
	for x := range res.NodePMF {
		if res.NodePMF[x] > res.NodePMF[peak] {
			peak = x
		}
	}
	if peak != 5 {
		t.Errorf("node PMF peaks at %d, want 5", peak)
	}
}

func TestFig7DistributionsClosestNearR10(t *testing.T) {
	// The paper: object and node distributions are closest around
	// r = 10, where load balance is best.
	c := testCorpus(t, 20000)
	tv := map[int]float64{}
	for _, r := range []int{6, 10, 16} {
		res, err := Fig7(c, r)
		if err != nil {
			t.Fatal(err)
		}
		tv[r] = TotalVariation(res.NodePMF, res.ObjectPMF)
	}
	if tv[10] >= tv[6] || tv[10] >= tv[16] {
		t.Errorf("TV distances: r6=%.3f r10=%.3f r16=%.3f — expected minimum at r=10",
			tv[6], tv[10], tv[16])
	}
}

func TestDeploymentEndToEnd(t *testing.T) {
	c := testCorpus(t, 2000)
	d, err := NewDeployment(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	// Total indexed objects across servers equals the corpus size.
	total := 0
	for _, s := range d.Servers {
		total += s.Stats().Objects
	}
	if total != c.Len() {
		t.Errorf("indexed %d objects, want %d", total, c.Len())
	}
}

func TestFig8CurveShape(t *testing.T) {
	c := testCorpus(t, 8000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 1000, Templates: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	recalls := []float64{0.2, 0.5, 1.0}
	for _, m := range []int{1, 2} {
		queries := log.PopularOfSize(m, 5)
		if len(queries) == 0 {
			t.Fatalf("no queries of size %d", m)
		}
		line, err := Fig8(d, queries, recalls)
		if err != nil {
			t.Fatal(err)
		}
		// Monotone non-decreasing in recall.
		for i := 1; i < len(line.NodesFrac); i++ {
			if line.NodesFrac[i] < line.NodesFrac[i-1] {
				t.Errorf("m=%d: nodes frac decreased with recall: %v", m, line.NodesFrac)
			}
		}
		// At 100% recall the whole subcube is traversed: the fraction
		// is ≈ 2^-m (slightly above when keyword hashes collide and
		// |One| < m, per the paper's r=8 observation).
		bound := 1 / float64(int(1)<<uint(m))
		last := line.NodesFrac[len(line.NodesFrac)-1]
		if last < 0.5*bound || last > 2.5*bound {
			t.Errorf("m=%d: 100%% recall frac %.4f not within [0.5, 2.5]·2^-m (%.4f)", m, last, bound)
		}
	}
}

func TestFig9CacheReducesContacts(t *testing.T) {
	c := testCorpus(t, 5000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 3000, Templates: 100, Seed: 7, MaxTemplateResults: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Fig9(c, log, 8, []float64{0, 1.0}, 1.0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	noCache, withCache := points[0], points[1]
	if noCache.HitRate != 0 {
		t.Errorf("alpha 0 hit rate = %g", noCache.HitRate)
	}
	if withCache.HitRate < 0.5 {
		t.Errorf("alpha 1.0 hit rate = %.2f, want most queries cached", withCache.HitRate)
	}
	if withCache.AvgNodesFrac >= noCache.AvgNodesFrac/2 {
		t.Errorf("cache cut contacts only from %.4f to %.4f", noCache.AvgNodesFrac, withCache.AvgNodesFrac)
	}
}

func TestOpCostsSingleLookup(t *testing.T) {
	c := testCorpus(t, 500)
	d, err := NewDeployment(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	costs, err := OpCosts(d, c, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range costs {
		if oc.AvgMessages != 2 || oc.AvgNodes != 1 {
			t.Errorf("%s: %.1f msgs / %.1f nodes, want 2 / 1", oc.Op, oc.AvgMessages, oc.AvgNodes)
		}
	}
}

func TestCompareTraversals(t *testing.T) {
	c := testCorpus(t, 3000)
	d, err := NewDeployment(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 100, Templates: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	qs := log.PopularOfSize(1, 1)
	if len(qs) == 0 {
		t.Fatal("no size-1 query")
	}
	costs, err := CompareTraversals(d, qs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("costs = %d", len(costs))
	}
	for _, tc := range costs {
		if tc.Matches == 0 {
			t.Errorf("%v returned no matches", tc.Order)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	c := testCorpus(t, 2000)
	var sb strings.Builder
	RenderFig5(&sb, Fig5(c))
	hyper, _ := Fig6Load(c, SchemeHypercube, 8)
	RenderFig6(&sb, []LoadCurve{hyper}, []float64{0.01, 0.1, 0.5})
	f7, _ := Fig7(c, 8)
	RenderFig7(&sb, f7)
	RenderFig8(&sb, []Fig8Line{{R: 8, M: 1, Recalls: []float64{1}, NodesFrac: []float64{0.5}, Queries: 1}})
	RenderFig9(&sb, 8, 1.0, []Fig9Point{{Alpha: 0.1, AvgNodesFrac: 0.01, HitRate: 0.9, Queries: 10}})
	RenderOpCosts(&sb, []OpCost{{Op: "insert", AvgMessages: 2, AvgNodes: 1, Samples: 5}})
	out := sb.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Section 3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}

}
