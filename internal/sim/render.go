package sim

import (
	"fmt"
	"io"
	"strings"
)

// Rendering helpers shared by cmd/ksbench and the benchmark harness:
// each figure gets a plain-text table whose rows mirror the series the
// paper plots.

// RenderFig5 prints the keyword-set-size distribution.
func RenderFig5(w io.Writer, res Fig5Result) {
	fmt.Fprintf(w, "Figure 5 — keyword-set-size distribution (mean %.2f keywords/object)\n", res.Mean)
	fmt.Fprintf(w, "%-6s %-10s %s\n", "size", "objects", "share")
	total := 0
	for _, n := range res.Hist {
		total += n
	}
	for s, n := range res.Hist {
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%-6d %-10d %6.2f%%  %s\n", s, n, 100*float64(n)/float64(total),
			bar(float64(n)/float64(total), 40))
	}
}

// RenderFig6 prints cumulative load-share curves: for each scheme, the
// share of object references held by the heaviest x%% of nodes.
func RenderFig6(w io.Writer, curves []LoadCurve, fracs []float64) {
	fmt.Fprintln(w, "Figure 6 — load distribution (cumulative % of object references on the heaviest nodes)")
	header := fmt.Sprintf("%-16s", "scheme")
	for _, f := range fracs {
		header += fmt.Sprintf(" %7.0f%%", 100*f)
	}
	header += fmt.Sprintf(" %8s", "Gini")
	fmt.Fprintln(w, header)
	fmt.Fprintf(w, "%-16s", "perfect")
	for _, f := range fracs {
		fmt.Fprintf(w, " %7.1f%%", 100*f)
	}
	fmt.Fprintf(w, " %8.3f\n", 0.0)
	for _, c := range curves {
		fmt.Fprintf(w, "%-16s", fmt.Sprintf("%s-%d", c.Scheme, c.R))
		for _, f := range fracs {
			fmt.Fprintf(w, " %7.1f%%", 100*c.CumulativeShare(f))
		}
		fmt.Fprintf(w, " %8.3f\n", c.Gini())
	}
}

// RenderFig7 prints the node-versus-object distribution for one r.
func RenderFig7(w io.Writer, res Fig7Result) {
	fmt.Fprintf(w, "Figure 7 (r=%d) — %% of nodes / objects at each |One(u)| = x\n", res.R)
	fmt.Fprintf(w, "%-4s %9s %9s %9s\n", "x", "nodes", "objects", "Eq(1)")
	for x := 0; x <= res.R; x++ {
		if res.NodePMF[x] < 1e-6 && res.ObjectPMF[x] < 1e-6 {
			continue
		}
		fmt.Fprintf(w, "%-4d %8.2f%% %8.2f%% %8.2f%%\n",
			x, 100*res.NodePMF[x], 100*res.ObjectPMF[x], 100*res.AnalyticObjectPMF[x])
	}
	fmt.Fprintf(w, "total variation (node vs object): %.4f\n",
		TotalVariation(res.NodePMF, res.ObjectPMF))
}

// RenderFig8 prints nodes-contacted-versus-recall lines.
func RenderFig8(w io.Writer, lines []Fig8Line) {
	fmt.Fprintln(w, "Figure 8 — cacheless query performance (% of nodes contacted vs recall)")
	if len(lines) == 0 {
		return
	}
	header := fmt.Sprintf("%-10s", "r / m")
	for _, rc := range lines[0].Recalls {
		header += fmt.Sprintf(" %7.0f%%", 100*rc)
	}
	fmt.Fprintln(w, header)
	for _, l := range lines {
		fmt.Fprintf(w, "%-10s", fmt.Sprintf("r=%d m=%d", l.R, l.M))
		for _, f := range l.NodesFrac {
			fmt.Fprintf(w, " %7.3f%%", 100*f)
		}
		fmt.Fprintf(w, "   (2^-m = %.3f%%, %d queries)\n", 100/float64(int(1)<<uint(l.M)), l.Queries)
	}
}

// RenderFig9 prints the cache study.
func RenderFig9(w io.Writer, r int, recall float64, points []Fig9Point) {
	fmt.Fprintf(w, "Figure 9 — query performance with cache (r=%d, recall %.0f%%)\n", r, 100*recall)
	fmt.Fprintf(w, "%-8s %-10s %-14s %-10s %s\n", "alpha", "capacity", "avg %nodes", "hit rate", "queries")
	for _, p := range points {
		fmt.Fprintf(w, "%-8.3f %-10d %-13.3f%% %-9.1f%% %d\n",
			p.Alpha, p.CacheCapacity, 100*p.AvgNodesFrac, 100*p.HitRate, p.Queries)
	}
}

// RenderOpCosts prints the Section 3.5 operation-cost table.
func RenderOpCosts(w io.Writer, costs []OpCost) {
	fmt.Fprintln(w, "Section 3.5 — operation costs")
	fmt.Fprintf(w, "%-12s %-12s %-10s %s\n", "op", "avg msgs", "avg nodes", "samples")
	for _, c := range costs {
		fmt.Fprintf(w, "%-12s %-12.2f %-10.2f %d\n", c.Op, c.AvgMessages, c.AvgNodes, c.Samples)
	}
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width) * 4)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
