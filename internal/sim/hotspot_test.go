package sim

import (
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/corpus"
)

func TestHotSpotsDIIConcentratesQueryLoad(t *testing.T) {
	c := testCorpus(t, 8000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 20000, Templates: 500, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := HotSpots(log, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Both schemes see every query.
	if res.Hyper.Total != log.Len() {
		t.Errorf("hypercube arrivals = %d, want %d", res.Hyper.Total, log.Len())
	}
	if res.DII.Total < log.Len() {
		t.Errorf("DII arrivals = %d, want ≥ %d (one per query keyword)", res.DII.Total, log.Len())
	}
	// The paper's §3.4 caveat, quantified: the hypercube's hottest
	// node carries roughly the most popular template's repeat traffic
	// (one exact keyword set → one root), no more.
	if res.HyperTopNodeShare > res.TopTemplateShare*1.5+0.02 {
		t.Errorf("hypercube top node %.3f far exceeds top template share %.3f",
			res.HyperTopNodeShare, res.TopTemplateShare)
	}
	if res.HyperServingNodes == 0 || res.DIIServingNodes == 0 {
		t.Error("no serving nodes counted")
	}
}

// The hot-vertex layer's spread attribution must flatten the residual
// hypercube hot spot: same arrivals, strictly lower top-node share,
// no higher Gini, and more serving nodes.
func TestHotSpotsSpreadFlattensResidualHotSpot(t *testing.T) {
	c := testCorpus(t, 8000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 20000, Templates: 500, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := HotSpots(log, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread.Total != res.Hyper.Total {
		t.Errorf("spread attribution lost arrivals: %d, want %d", res.Spread.Total, res.Hyper.Total)
	}
	if res.SpreadTopNodeShare >= res.HyperTopNodeShare {
		t.Errorf("spread top-node share %.3f not below plain hypercube %.3f",
			res.SpreadTopNodeShare, res.HyperTopNodeShare)
	}
	if g, base := res.Spread.Gini(), res.Hyper.Gini(); g > base {
		t.Errorf("spread Gini %.3f worse than plain hypercube %.3f", g, base)
	}
	if res.SpreadServingNodes < res.HyperServingNodes {
		t.Errorf("spreading reduced serving nodes: %d < %d",
			res.SpreadServingNodes, res.HyperServingNodes)
	}
	// Promotion spreads only residual traffic: the top node still
	// carries at least the threshold's worth of each promoted template
	// plus its rotation share — it cannot drop below 1/(k+1) of the
	// plain share.
	if res.SpreadTopNodeShare < res.HyperTopNodeShare/(HotSpotSpreadReplicas+2) {
		t.Errorf("spread top-node share %.3f implausibly low vs %.3f",
			res.SpreadTopNodeShare, res.HyperTopNodeShare)
	}
}

func TestHotSpotsValidation(t *testing.T) {
	c := testCorpus(t, 200)
	log, _ := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 50, Templates: 10, Seed: 1})
	if _, err := HotSpots(log, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestRenderHotSpots(t *testing.T) {
	var sb strings.Builder
	RenderHotSpots(&sb, HotSpotResult{R: 10})
	if !strings.Contains(sb.String(), "Hot spots") {
		t.Error("missing header")
	}
}
