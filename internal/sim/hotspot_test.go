package sim

import (
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/corpus"
)

func TestHotSpotsDIIConcentratesQueryLoad(t *testing.T) {
	c := testCorpus(t, 8000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 20000, Templates: 500, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := HotSpots(log, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Both schemes see every query.
	if res.Hyper.Total != log.Len() {
		t.Errorf("hypercube arrivals = %d, want %d", res.Hyper.Total, log.Len())
	}
	if res.DII.Total < log.Len() {
		t.Errorf("DII arrivals = %d, want ≥ %d (one per query keyword)", res.DII.Total, log.Len())
	}
	// The paper's §3.4 caveat, quantified: the hypercube's hottest
	// node carries roughly the most popular template's repeat traffic
	// (one exact keyword set → one root), no more.
	if res.HyperTopNodeShare > res.TopTemplateShare*1.5+0.02 {
		t.Errorf("hypercube top node %.3f far exceeds top template share %.3f",
			res.HyperTopNodeShare, res.TopTemplateShare)
	}
	if res.HyperServingNodes == 0 || res.DIIServingNodes == 0 {
		t.Error("no serving nodes counted")
	}
}

func TestHotSpotsValidation(t *testing.T) {
	c := testCorpus(t, 200)
	log, _ := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 50, Templates: 10, Seed: 1})
	if _, err := HotSpots(log, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestRenderHotSpots(t *testing.T) {
	var sb strings.Builder
	RenderHotSpots(&sb, HotSpotResult{R: 10})
	if !strings.Contains(sb.String(), "Hot spots") {
		t.Error("missing header")
	}
}
