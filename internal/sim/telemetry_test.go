package sim

import (
	"math"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// TestReplayTelemetryReconcilesWithFig9 replays a query log against an
// instrumented deployment and checks that the telemetry counters agree
// exactly with the replay's own accounting: ReplayLog skips zero-result
// templates before sending, so every counted query consults the root
// cache exactly once, making hits+misses equal the query count and the
// hit counter equal HitRate·Queries with no slack.
func TestReplayTelemetryReconcilesWithFig9(t *testing.T) {
	c := testCorpus(t, 5000)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries:            1500,
		Templates:          200,
		Seed:               2,
		MaxTemplateResults: 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New(64)
	d, err := NewInstrumentedDeployment(6, 50, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}

	pt, err := ReplayLog(d, log.Queries(), log, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Queries == 0 || pt.HitRate == 0 {
		t.Fatalf("degenerate replay: %+v", pt)
	}

	snap := reg.Snapshot()
	hits := snap.Counters["core_cache_hits_total"]
	misses := snap.Counters["core_cache_misses_total"]
	if hits+misses != uint64(pt.Queries) {
		t.Errorf("cache consultations %d+%d != %d replayed queries", hits, misses, pt.Queries)
	}
	wantHits := uint64(math.Round(pt.HitRate * float64(pt.Queries)))
	if hits != wantHits {
		t.Errorf("telemetry hits = %d, Fig9 hit rate implies %d", hits, wantHits)
	}

	// The servers' built-in cache accounting must agree with the
	// mirrored telemetry counters.
	var srvHits, srvMisses uint64
	for _, s := range d.Servers {
		h, m := s.CacheStats()
		srvHits += h
		srvMisses += m
	}
	if srvHits != hits || srvMisses != misses {
		t.Errorf("server cache stats %d/%d != telemetry %d/%d", srvHits, srvMisses, hits, misses)
	}

	// One root T_QUERY — and so one search span — per counted query.
	if ops := snap.Counters[`core_ops_total{op="superset-search"}`]; ops != uint64(pt.Queries) {
		t.Errorf("superset-search ops = %d, want %d", ops, pt.Queries)
	}
	if snap.SpansTotal != uint64(pt.Queries) {
		t.Errorf("spans recorded = %d, want %d", snap.SpansTotal, pt.Queries)
	}
}
