package sim

import (
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

func TestGenerateChurnDeterministicAndBounded(t *testing.T) {
	base := []transport.Addr{"n0", "n1", "n2", "n3"}
	cfg := ChurnConfig{Queries: 10, Joins: 3, Leaves: 2, Leavable: base[1:]}
	a, err := GenerateChurn(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChurn(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	if c, _ := GenerateChurn(43, cfg); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}

	joins, leaves := 0, 0
	left := map[transport.Addr]bool{}
	for i, ev := range a.Events {
		if ev.AtQuery < 1 || ev.AtQuery >= cfg.Queries {
			t.Errorf("event %d at boundary %d, want [1, %d)", i, ev.AtQuery, cfg.Queries)
		}
		if i > 0 && a.Events[i-1].AtQuery > ev.AtQuery {
			t.Errorf("events not sorted by boundary at %d", i)
		}
		switch ev.Kind {
		case FaultJoin:
			joins++
		case FaultLeave:
			leaves++
			if left[ev.Node] {
				t.Errorf("peer %s leaves twice", ev.Node)
			}
			left[ev.Node] = true
			if ev.Node == base[0] {
				t.Errorf("non-leavable peer %s scheduled to leave", ev.Node)
			}
		default:
			t.Errorf("unexpected fault kind %v in churn schedule", ev.Kind)
		}
	}
	if joins != cfg.Joins || leaves != cfg.Leaves {
		t.Fatalf("schedule has %d joins / %d leaves, want %d / %d", joins, leaves, cfg.Joins, cfg.Leaves)
	}

	if _, err := GenerateChurn(1, ChurnConfig{Queries: 1}); err == nil {
		t.Error("query span below 2 accepted")
	}
	if _, err := GenerateChurn(1, ChurnConfig{Queries: 5, Leaves: 3, Leavable: base[:2]}); err == nil {
		t.Error("more leaves than leavable peers accepted")
	}
}

func TestChurnMembershipFold(t *testing.T) {
	base := []transport.Addr{"n0", "n1", "n2"}
	s := ChaosSchedule{Events: []FaultEvent{
		{AtQuery: 1, Kind: FaultJoin, Node: JoinerAddr(0)},
		{AtQuery: 2, Kind: FaultLeave, Node: "n1"},
		{AtQuery: 3, Kind: FaultJoin, Node: JoinerAddr(1)},
		{AtQuery: 4, Kind: FaultLeave, Node: JoinerAddr(0)},
	}}
	got := s.Membership(base)
	want := []transport.Addr{"n0", "n2", JoinerAddr(1)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Membership = %v, want %v", got, want)
	}
	if JoinerAddr(3) != "churn-join-3" {
		t.Fatalf("JoinerAddr(3) = %s", JoinerAddr(3))
	}
}
