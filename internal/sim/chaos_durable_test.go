package sim

import (
	"runtime"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// TestChaosFingerprintInvariantUnderDurableRecovery replays one seeded
// fault schedule against the in-memory baseline fleet and against
// durable fleets, where a crash wipes the node's tables and a recover
// replays its data directory. The outcome fingerprints must be
// byte-identical: recovery from disk must reconstruct exactly the
// state the crash destroyed, in every observable — answers and their
// order, errors, completeness, failed subtrees.
func TestChaosFingerprintInvariantUnderDurableRecovery(t *testing.T) {
	const (
		r         = 6
		peers     = 16
		chaosSeed = 7
	)
	c := testCorpus(t, 800)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 200, Templates: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 8)
	if len(queries) < 12 {
		t.Fatalf("too few study queries: %d", len(queries))
	}

	d0, err := NewCustomDeployment(DeployConfig{R: r, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	nodes := d0.Addrs
	sched, err := GenerateChaos(chaosSeed, ChaosConfig{
		Queries: len(queries), Nodes: nodes,
		CrashFrac: 0.2, Recover: true,
		Partitions: 2, PartitionSpan: 6,
	})
	if err != nil {
		d0.Close()
		t.Fatal(err)
	}
	// The comparison is only meaningful if the schedule actually
	// round-trips a node through crash and recovery.
	recovers := 0
	for _, ev := range sched.Events {
		if ev.Kind == FaultRecover {
			recovers++
		}
	}
	if recovers == 0 {
		d0.Close()
		t.Fatal("schedule has no recover events — durable replay would never run")
	}

	run := func(d *Deployment) string {
		defer d.Close()
		if err := d.InsertCorpus(c); err != nil {
			t.Fatal(err)
		}
		sched.PrefixEvery = 4 // pin the prefix class in the fingerprint too
		rep, err := ReplayChaos(d, nil, queries, sched)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded+rep.Failed == 0 {
			t.Fatal("schedule injected no observable degradation — the comparison is vacuous")
		}
		return rep.Fingerprint()
	}

	baseline := run(d0)
	for _, fsync := range []store.FsyncPolicy{store.FsyncAlways, store.FsyncInterval} {
		reg := telemetry.New(8)
		d, err := NewCustomDeployment(DeployConfig{
			R: r, Peers: peers,
			DataDir: t.TempDir(), Fsync: fsync,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := run(d); got != baseline {
			t.Errorf("fsync=%v: durable-recovery fingerprint %s differs from in-memory baseline %s",
				fsync, got, baseline)
		}
		if v := reg.Counter("store_recovery_replayed_total").Value(); v == 0 {
			t.Errorf("fsync=%v: no WAL records replayed — the durable crash model did not engage", fsync)
		}
	}
}

// BenchmarkDurableIndexingOverhead indexes the same corpus into an
// in-memory fleet and a durable fleet (fsync=interval, the default
// policy) and gates the WAL's end-to-end indexing overhead at 10% —
// the acceptance bound the group-commit flush loop exists to meet.
// Fixed-rep best-of-k timing outside b.N, PR4-style, so the gate runs
// even at -benchtime=1x; gated only on boxes with ≥ 4 cores, where
// timing is stable enough to hold a 10% margin.
func BenchmarkDurableIndexingOverhead(b *testing.B) {
	const (
		r       = 6
		peers   = 16
		records = 800
		reps    = 20
	)
	c, err := corpus.Generate(corpus.Config{Objects: records, VocabSize: 4000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}

	pass := func(dataDir string) time.Duration {
		cfg := DeployConfig{R: r, Peers: peers}
		if dataDir != "" {
			cfg.DataDir = dataDir
			cfg.Fsync = store.FsyncInterval
		}
		d, err := NewCustomDeployment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		start := time.Now()
		if err := d.InsertCorpus(c); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// One untimed pass of each shape warms the allocator and page cache,
	// then plain/durable passes interleave so both floors are taken over
	// the same machine conditions — best-of-k converges on the intrinsic
	// cost even when a shared box injects multi-hundred-µs noise spikes.
	pass("")
	pass(b.TempDir())
	plain := time.Duration(1<<63 - 1)
	durable := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := pass(""); d < plain {
			plain = d
		}
		if d := pass(b.TempDir()); d < durable {
			durable = d
		}
	}
	overhead := float64(durable)/float64(plain) - 1

	if cores := runtime.GOMAXPROCS(0); cores >= 4 && runtime.NumCPU() >= 4 && overhead > 0.10 {
		b.Fatalf("durable indexing overhead %.1f%% > 10%% with fsync=interval (plain %v, durable %v per corpus)",
			overhead*100, plain, durable)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pass(b.TempDir())
	}
	b.ReportMetric(overhead*100, "overhead-%")
	b.ReportMetric(float64(plain.Nanoseconds()), "plain-ns/corpus")
	b.ReportMetric(float64(durable.Nanoseconds()), "durable-ns/corpus")
}
