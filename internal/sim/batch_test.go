package sim

import (
	"context"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// parallelSearcher forces every chaos-replay query through the
// ParallelLevels order, the traversal wave batching applies to.
type parallelSearcher struct{ c *core.Client }

func (p parallelSearcher) SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts core.SearchOptions) (core.Result, error) {
	opts.Order = core.ParallelLevels
	return p.c.SupersetSearch(ctx, k, threshold, opts)
}

func (p parallelSearcher) PrefixSearch(ctx context.Context, prefix string, threshold int, opts core.SearchOptions) (core.Result, error) {
	opts.Order = core.ParallelLevels
	return p.c.PrefixSearch(ctx, prefix, threshold, opts)
}

// TestChaosReplayFingerprintUnchangedByBatching replays one seeded
// chaos schedule — crashes, recoveries and partitions over a folded
// 16-peer fleet — against a batched and an unbatched deployment and
// requires byte-identical outcome fingerprints: same per-query errors,
// object IDs in order, completeness and failed-subtree counts.
func TestChaosReplayFingerprintUnchangedByBatching(t *testing.T) {
	const (
		r         = 6
		peers     = 16
		chaosSeed = 21
	)
	c := testCorpus(t, 600)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 150, Templates: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := FaultStudyQueries(log, 6)
	if len(queries) < 10 {
		t.Fatalf("too few study queries: %d", len(queries))
	}

	run := func(mode core.BatchMode) string {
		d, err := NewCustomDeployment(DeployConfig{R: r, Peers: peers, Batch: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.InsertCorpus(c); err != nil {
			t.Fatal(err)
		}
		sched, err := GenerateChaos(chaosSeed, ChaosConfig{
			Queries: len(queries), Nodes: d.Addrs,
			CrashFrac: 0.2, Recover: true,
			Partitions: 2, PartitionSpan: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		sched.PrefixEvery = 4 // pin the prefix class in the fingerprint too
		report, err := ReplayChaos(d, parallelSearcher{d.Client}, queries, sched)
		if err != nil {
			t.Fatal(err)
		}
		if report.Failed+report.Degraded == 0 {
			t.Fatal("chaos schedule caused no degradation; the comparison is vacuous")
		}
		return report.Fingerprint()
	}

	off := run(core.BatchOff)
	on := run(core.BatchOn)
	if off != on {
		t.Fatalf("chaos fingerprints diverge:\n  unbatched %s\n  batched   %s", off, on)
	}
}

// TestBatchStudyReducesFrames runs the ksbench batch study end to end
// on a small fleet and checks its invariants: identical matches in both
// modes, identical logical message counts, and strictly fewer physical
// frames batched on every exhaustive query.
func TestBatchStudyReducesFrames(t *testing.T) {
	c := testCorpus(t, 600)
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 200, Templates: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var queries []keyword.Set
	for m := 1; m <= 2; m++ {
		queries = append(queries, log.PopularOfSize(m, 2)...)
	}
	if len(queries) == 0 {
		t.Fatal("no study queries")
	}

	res, err := BatchStudy(c, queries, 8, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(queries) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(queries))
	}
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("query %s: match sequences diverge", p.QueryKey)
		}
		if p.FramesOn >= p.FramesOff {
			t.Errorf("query %s: frames %d batched vs %d unbatched — no reduction",
				p.QueryKey, p.FramesOn, p.FramesOff)
		}
	}

	if _, err := BatchStudy(c, nil, 8, 16, 0); err == nil {
		t.Error("empty query list accepted")
	}
}
