// Package hypercube implements the r-dimensional hypercube vector space
// underlying the keyword index scheme of Joung, Fang and Yang (ICDCS 2005):
// vertices as r-bit vectors, induced subhypercubes, and spanning binomial
// trees (SBTs) used for superset search.
//
// Throughout the package, bit i of a vertex (counting from the right,
// i.e. the least significant bit is dimension 0) corresponds to the i-th
// dimension of the hypercube, matching the paper's u[i] notation.
package hypercube

import (
	"fmt"
	"math/bits"
	"strconv"
)

// MaxDim is the largest supported hypercube dimensionality. Vertices are
// stored in a uint64, so at most 64 dimensions are representable.
const MaxDim = 64

// Vertex is a node of an r-dimensional hypercube, encoded as an r-bit
// binary string in the low r bits of a uint64.
type Vertex uint64

// Bit reports the i-th bit of v (the paper's u[i]).
func (v Vertex) Bit(i int) bool {
	return v>>uint(i)&1 == 1
}

// One returns the set One(v) = {i : v[i] = 1} as an ascending slice of
// dimension indices, considering only the low r bits.
func (v Vertex) One(r int) []int {
	ones := make([]int, 0, bits.OnesCount64(uint64(v)))
	for i := 0; i < r; i++ {
		if v.Bit(i) {
			ones = append(ones, i)
		}
	}
	return ones
}

// Zero returns the set Zero(v) = {i : v[i] = 0, 0 <= i < r} as an
// ascending slice of dimension indices.
func (v Vertex) Zero(r int) []int {
	zeros := make([]int, 0, r-bits.OnesCount64(uint64(v)))
	for i := 0; i < r; i++ {
		if !v.Bit(i) {
			zeros = append(zeros, i)
		}
	}
	return zeros
}

// OnesCount returns |One(v)|, the number of set bits.
func (v Vertex) OnesCount() int {
	return bits.OnesCount64(uint64(v))
}

// Contains reports whether v contains u in the paper's sense:
// u[i] => v[i] for all i, i.e. One(u) ⊆ One(v).
func (v Vertex) Contains(u Vertex) bool {
	return uint64(u)&^uint64(v) == 0
}

// Neighbor returns v's neighbor in dimension i (v with bit i flipped).
func (v Vertex) Neighbor(i int) Vertex {
	return v ^ Vertex(1)<<uint(i)
}

// Hamming returns the Hamming distance between u and v.
func Hamming(u, v Vertex) int {
	return bits.OnesCount64(uint64(u ^ v))
}

// String renders v as a plain binary string of its significant bits
// (use StringR for fixed-width rendering).
func (v Vertex) String() string {
	return strconv.FormatUint(uint64(v), 2)
}

// StringR renders v as an r-bit binary string, most significant
// dimension first, matching the paper's figures (e.g. "0100").
func (v Vertex) StringR(r int) string {
	buf := make([]byte, r)
	for i := 0; i < r; i++ {
		if v.Bit(r - 1 - i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// ParseVertex parses an r-bit binary string (MSB first) into a Vertex.
func ParseVertex(s string) (Vertex, error) {
	if len(s) == 0 || len(s) > MaxDim {
		return 0, fmt.Errorf("hypercube: vertex string %q must have 1..%d bits", s, MaxDim)
	}
	var v Vertex
	for _, c := range s {
		switch c {
		case '0':
			v <<= 1
		case '1':
			v = v<<1 | 1
		default:
			return 0, fmt.Errorf("hypercube: vertex string %q contains non-binary rune %q", s, c)
		}
	}
	return v, nil
}

// Cube describes an r-dimensional hypercube H_r.
type Cube struct {
	r int
}

// New returns the hypercube H_r. It returns an error if r is outside
// [1, MaxDim].
func New(r int) (Cube, error) {
	if r < 1 || r > MaxDim {
		return Cube{}, fmt.Errorf("hypercube: dimension %d outside [1, %d]", r, MaxDim)
	}
	return Cube{r: r}, nil
}

// MustNew is New for statically-known dimensions; it panics on an
// invalid r and is intended for tests and package-level defaults.
func MustNew(r int) Cube {
	c, err := New(r)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the dimensionality r.
func (c Cube) Dim() int { return c.r }

// Size returns the number of vertices 2^r.
func (c Cube) Size() uint64 {
	if c.r == 64 {
		return 0 // 2^64 overflows; callers must special-case r = 64.
	}
	return 1 << uint(c.r)
}

// Mask returns a Vertex with the low r bits set.
func (c Cube) Mask() Vertex {
	if c.r == 64 {
		return ^Vertex(0)
	}
	return Vertex(1)<<uint(c.r) - 1
}

// Valid reports whether v is a vertex of H_r (no bits above r-1).
func (c Cube) Valid(v Vertex) bool {
	return v&^c.Mask() == 0
}

// SubcubeSize returns |H_r(u)| = 2^(r - |One(u)|), the number of
// vertices in the subhypercube induced by u.
func (c Cube) SubcubeSize(u Vertex) uint64 {
	free := c.r - u.OnesCount()
	if free >= 64 {
		return 0
	}
	return 1 << uint(free)
}

// InSubcube reports whether w is a vertex of the subhypercube H_r(u)
// induced by u, i.e. whether w contains u.
func (c Cube) InSubcube(u, w Vertex) bool {
	return c.Valid(w) && w.Contains(u)
}

// SubcubeVertices enumerates all vertices of H_r(u) in ascending order
// of the free-bit pattern. It is intended for tests and small cubes; the
// slice has 2^(r-|One(u)|) entries.
func (c Cube) SubcubeVertices(u Vertex) []Vertex {
	free := u.Zero(c.r)
	n := uint64(1) << uint(len(free))
	out := make([]Vertex, 0, n)
	for pattern := uint64(0); pattern < n; pattern++ {
		w := u
		for bit, dim := range free {
			if pattern>>uint(bit)&1 == 1 {
				w |= Vertex(1) << uint(dim)
			}
		}
		out = append(out, w)
	}
	return out
}
