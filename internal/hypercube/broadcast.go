package hypercube

import "fmt"

// Broadcast support over spanning binomial trees (the paper's
// reference [3], Johnsson & Ho: optimum broadcasting in hypercubes).
// A message injected at the root reaches all 2^(r-|One(u)|) vertices
// of the induced subhypercube in |Zero(u)| steps, each vertex
// forwarding to its SBT children.

// BroadcastStep describes one transmission of a broadcast schedule:
// in round Round, From forwards to To.
type BroadcastStep struct {
	Round int
	From  Vertex
	To    Vertex
}

// BroadcastSchedule returns the transmission schedule for broadcasting
// from u over SBT_{H_r}(u): steps grouped by round, where round i
// transmits across dimension edges at tree depth i. The schedule has
// exactly 2^(r-|One(u)|) - 1 transmissions and depth |Zero(u)| rounds,
// both optimal.
func (c Cube) BroadcastSchedule(u Vertex) []BroadcastStep {
	if !c.Valid(u) {
		return nil
	}
	var steps []BroadcastStep
	levels := c.InducedLevels(u)
	for depth := 1; depth < len(levels); depth++ {
		for _, v := range levels[depth] {
			parent, _, err := c.InducedParent(u, v)
			if err != nil {
				continue // unreachable: levels only contain subcube vertices
			}
			steps = append(steps, BroadcastStep{Round: depth, From: parent, To: v})
		}
	}
	return steps
}

// ValidateBroadcast checks that a schedule delivers to every vertex of
// the subcube exactly once, from an already-informed sender, in
// non-decreasing rounds — the correctness conditions of SBT broadcast.
// It is used by property tests and available for diagnostics.
func (c Cube) ValidateBroadcast(u Vertex, steps []BroadcastStep) error {
	informed := map[Vertex]bool{u: true}
	lastRound := 0
	for i, st := range steps {
		if st.Round < lastRound {
			return fmt.Errorf("hypercube: step %d round %d after round %d", i, st.Round, lastRound)
		}
		lastRound = st.Round
		if !informed[st.From] {
			return fmt.Errorf("hypercube: step %d sender %s not yet informed", i, st.From.StringR(c.r))
		}
		if informed[st.To] {
			return fmt.Errorf("hypercube: step %d receiver %s informed twice", i, st.To.StringR(c.r))
		}
		if Hamming(st.From, st.To) != 1 {
			return fmt.Errorf("hypercube: step %d is not an edge transmission", i)
		}
		if !c.InSubcube(u, st.To) || !c.InSubcube(u, st.From) {
			return fmt.Errorf("hypercube: step %d leaves the subcube", i)
		}
		informed[st.To] = true
	}
	if want := c.SubcubeSize(u); uint64(len(informed)) != want {
		return fmt.Errorf("hypercube: broadcast reached %d of %d vertices", len(informed), want)
	}
	return nil
}
