package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBroadcastScheduleFigure4(t *testing.T) {
	c := MustNew(4)
	u, _ := ParseVertex("0100")
	steps := c.BroadcastSchedule(u)
	// 8-vertex subcube: 7 transmissions over 3 rounds.
	if len(steps) != 7 {
		t.Fatalf("steps = %d, want 7", len(steps))
	}
	if steps[len(steps)-1].Round != 3 {
		t.Errorf("last round = %d, want 3", steps[len(steps)-1].Round)
	}
	if err := c.ValidateBroadcast(u, steps); err != nil {
		t.Errorf("ValidateBroadcast: %v", err)
	}
}

func TestBroadcastScheduleInvalidRoot(t *testing.T) {
	c := MustNew(4)
	if steps := c.BroadcastSchedule(Vertex(1 << 10)); steps != nil {
		t.Error("schedule produced for vertex outside cube")
	}
}

func TestPropertyBroadcastIsOptimalAndValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		steps := c.BroadcastSchedule(u)
		if err := c.ValidateBroadcast(u, steps); err != nil {
			return false
		}
		// Optimal transmission count and depth.
		if uint64(len(steps)) != c.SubcubeSize(u)-1 {
			return false
		}
		free := c.Dim() - u.OnesCount()
		maxRound := 0
		for _, st := range steps {
			if st.Round > maxRound {
				maxRound = st.Round
			}
		}
		return free == 0 || maxRound == free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateBroadcastDetectsViolations(t *testing.T) {
	c := MustNew(3)
	u := Vertex(0)
	good := c.BroadcastSchedule(u)

	// Duplicate delivery.
	bad := append(append([]BroadcastStep{}, good...), good[len(good)-1])
	if err := c.ValidateBroadcast(u, bad); err == nil {
		t.Error("duplicate delivery accepted")
	}
	// Uninformed sender (reverse order).
	rev := make([]BroadcastStep, len(good))
	for i, st := range good {
		rev[len(good)-1-i] = st
	}
	if err := c.ValidateBroadcast(u, rev); err == nil {
		t.Error("reversed schedule accepted")
	}
	// Missing vertex.
	if err := c.ValidateBroadcast(u, good[:len(good)-1]); err == nil {
		t.Error("incomplete schedule accepted")
	}
	// Non-edge transmission.
	nonEdge := append([]BroadcastStep{}, good...)
	nonEdge[len(nonEdge)-1].To = nonEdge[len(nonEdge)-1].From ^ 0b011
	if err := c.ValidateBroadcast(u, nonEdge); err == nil {
		t.Error("non-edge transmission accepted")
	}
}
