package hypercube

import (
	"fmt"
	"math/bits"
)

// The spanning binomial tree (SBT) of Definition 3.2. For a root u and a
// vertex v, let p be the lowest dimension at which v and u differ
// (p = r when v = u). Then v's parent complements bit p, and v's
// children complement each bit j < p. Every vertex at depth d in the
// tree has Hamming distance exactly d from the root.
//
// The induced tree SBT_{H_r}(u) restricts the same construction to the
// subhypercube H_r(u): only the free dimensions Zero(u) participate, and
// since every tree vertex contains u, child edges always set a 0 bit.

// branchDim returns the branching dimension p for vertex v relative to
// root u: the lowest differing dimension, or r when v == u.
func (c Cube) branchDim(u, v Vertex) int {
	d := uint64(u ^ v)
	if d == 0 {
		return c.r
	}
	return bits.TrailingZeros64(d)
}

// SBTDepth returns v's depth in SBT(u) (equivalently in SBT_{H_r}(u)
// when v contains u): the Hamming distance from the root.
func (c Cube) SBTDepth(u, v Vertex) int {
	return Hamming(u, v)
}

// SBTParent returns v's parent in the spanning binomial tree rooted at
// u over the full hypercube H_r. The second result is false when v is
// the root (which has no parent).
func (c Cube) SBTParent(u, v Vertex) (Vertex, bool) {
	p := c.branchDim(u, v)
	if p == c.r {
		return 0, false
	}
	return v.Neighbor(p), true
}

// SBTChildren returns v's children in SBT(u) over the full hypercube:
// v with bit j complemented for every j below the branching dimension.
func (c Cube) SBTChildren(u, v Vertex) []Vertex {
	p := c.branchDim(u, v)
	children := make([]Vertex, 0, p)
	for j := p - 1; j >= 0; j-- {
		children = append(children, v.Neighbor(j))
	}
	return children
}

// InducedParent returns v's parent in the induced tree SBT_{H_r}(u).
// It returns an error if v is not a vertex of the subhypercube H_r(u),
// and (0, false, nil) when v is the root.
func (c Cube) InducedParent(u, v Vertex) (Vertex, bool, error) {
	if !c.InSubcube(u, v) {
		return 0, false, fmt.Errorf("hypercube: vertex %s not in subcube induced by %s",
			v.StringR(c.r), u.StringR(c.r))
	}
	p := c.branchDim(u, v)
	if p == c.r {
		return 0, false, nil
	}
	return v.Neighbor(p), true, nil
}

// InducedChildren returns v's children in SBT_{H_r}(u): v with bit j
// set for every free dimension j in Zero(u) below the branching
// dimension. The result is ordered from the highest dimension down,
// matching the paper's child list L = {(x, i) : i < d, i ∈ Zero(w)}.
func (c Cube) InducedChildren(u, v Vertex) []Vertex {
	p := c.branchDim(u, v)
	children := make([]Vertex, 0, p)
	for j := p - 1; j >= 0; j-- {
		if !u.Bit(j) && !v.Bit(j) {
			children = append(children, v.Neighbor(j))
		}
	}
	return children
}

// ChildEdge is a frontier entry of the paper's superset-search queue U:
// a tree vertex plus the dimension index at which it was generated from
// its parent. Children of To are restricted to dimensions below Dim.
type ChildEdge struct {
	To  Vertex
	Dim int
}

// InducedChildEdges returns v's children in SBT_{H_r}(u) as ChildEdges,
// i.e. the pairs (x, i) the paper's T_QUERY handler appends to the list
// L. generatedDim must be the dimension at which v itself was generated
// (use c.Dim() for the root).
func (c Cube) InducedChildEdges(u, v Vertex, generatedDim int) []ChildEdge {
	edges := make([]ChildEdge, 0, generatedDim)
	for j := generatedDim - 1; j >= 0; j-- {
		if !u.Bit(j) && !v.Bit(j) {
			edges = append(edges, ChildEdge{To: v.Neighbor(j), Dim: j})
		}
	}
	return edges
}

// RootChildEdges returns the initial frontier of a superset search
// rooted at u: u's neighbor in every free dimension, paired with that
// dimension, highest dimension first.
func (c Cube) RootChildEdges(u Vertex) []ChildEdge {
	return c.InducedChildEdges(u, u, c.r)
}

// InducedLevels enumerates the vertices of SBT_{H_r}(u) grouped by
// depth: result[d] holds all vertices at depth d (Hamming distance d
// from u). Level 0 is [u] itself. Intended for the parallel
// level-synchronous traversal and for tests; the total number of
// vertices is 2^(r-|One(u)|).
func (c Cube) InducedLevels(u Vertex) [][]Vertex {
	free := c.r - u.OnesCount()
	levels := make([][]Vertex, free+1)
	levels[0] = []Vertex{u}
	frontier := c.RootChildEdges(u)
	depth := 1
	for len(frontier) > 0 {
		verts := make([]Vertex, len(frontier))
		next := make([]ChildEdge, 0, len(frontier))
		for i, e := range frontier {
			verts[i] = e.To
			next = append(next, c.InducedChildEdges(u, e.To, e.Dim)...)
		}
		levels[depth] = verts
		frontier = next
		depth++
	}
	return levels[:depth]
}

// WalkInducedBFS visits every vertex of SBT_{H_r}(u) in breadth-first
// order starting from the root, calling fn(v, depth, genDim) for each.
// If fn returns false the walk stops early. genDim is the dimension at
// which v was generated (c.Dim() for the root), which callers need to
// compute v's own children.
func (c Cube) WalkInducedBFS(u Vertex, fn func(v Vertex, depth, genDim int) bool) {
	if !fn(u, 0, c.r) {
		return
	}
	queue := c.RootChildEdges(u)
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if !fn(e.To, c.SBTDepth(u, e.To), e.Dim) {
			return
		}
		queue = append(queue, c.InducedChildEdges(u, e.To, e.Dim)...)
	}
}
