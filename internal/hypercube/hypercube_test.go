package hypercube

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVertexBitOneZero(t *testing.T) {
	// Paper example: v = 010100 has One(v) = {2, 4}, Zero(v) = {0,1,3,5}.
	v, err := ParseVertex("010100")
	if err != nil {
		t.Fatalf("ParseVertex: %v", err)
	}
	if got, want := v.One(6), []int{2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("One = %v, want %v", got, want)
	}
	if got, want := v.Zero(6), []int{0, 1, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Zero = %v, want %v", got, want)
	}
	if v.OnesCount() != 2 {
		t.Errorf("OnesCount = %d, want 2", v.OnesCount())
	}
}

func TestParseVertexErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"nonbinary", "01012"},
		{"too long", string(make([]byte, 65))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseVertex(tt.in); err == nil {
				t.Errorf("ParseVertex(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestParseVertexRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1", "0100", "111000111", "0000000000000001"} {
		v, err := ParseVertex(s)
		if err != nil {
			t.Fatalf("ParseVertex(%q): %v", s, err)
		}
		if got := v.StringR(len(s)); got != s {
			t.Errorf("StringR(ParseVertex(%q)) = %q", s, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, r := range []int{0, -1, 65} {
		if _, err := New(r); err == nil {
			t.Errorf("New(%d) succeeded, want error", r)
		}
	}
	for _, r := range []int{1, 16, 64} {
		c, err := New(r)
		if err != nil {
			t.Errorf("New(%d): %v", r, err)
		}
		if c.Dim() != r {
			t.Errorf("Dim = %d, want %d", c.Dim(), r)
		}
	}
}

func TestCubeSizeAndMask(t *testing.T) {
	c := MustNew(10)
	if c.Size() != 1024 {
		t.Errorf("Size = %d, want 1024", c.Size())
	}
	if c.Mask() != 0x3FF {
		t.Errorf("Mask = %x, want 3ff", c.Mask())
	}
	if !c.Valid(0x3FF) || c.Valid(0x400) {
		t.Error("Valid boundary check failed")
	}
}

func TestContains(t *testing.T) {
	tests := []struct {
		v, u string
		want bool
	}{
		{"0100", "0100", true},
		{"0110", "0100", true},
		{"1111", "0100", true},
		{"0010", "0100", false},
		{"1011", "0100", false},
		{"0000", "0000", true},
		{"1111", "0000", true},
	}
	for _, tt := range tests {
		v, _ := ParseVertex(tt.v)
		u, _ := ParseVertex(tt.u)
		if got := v.Contains(u); got != tt.want {
			t.Errorf("%s.Contains(%s) = %v, want %v", tt.v, tt.u, got, tt.want)
		}
	}
}

func TestSubcubeVerticesMatchesFigure3(t *testing.T) {
	// Figure 3(b): H_4(0100) has the 8 vertices containing 0100.
	c := MustNew(4)
	u, _ := ParseVertex("0100")
	got := c.SubcubeVertices(u)
	want := []string{"0100", "0101", "0110", "0111", "1100", "1101", "1110", "1111"}
	if len(got) != len(want) {
		t.Fatalf("subcube size = %d, want %d", len(got), len(want))
	}
	seen := make(map[string]bool, len(got))
	for _, v := range got {
		seen[v.StringR(4)] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("subcube missing vertex %s", w)
		}
	}
	if c.SubcubeSize(u) != 8 {
		t.Errorf("SubcubeSize = %d, want 8", c.SubcubeSize(u))
	}
}

func TestSBTChildrenFullCube(t *testing.T) {
	// In SBT(u) over the full cube, the root's children complement each
	// of the r bits, and a node's children complement bits below its
	// lowest differing bit.
	c := MustNew(3)
	u := Vertex(0)
	root := c.SBTChildren(u, u)
	if len(root) != 3 {
		t.Fatalf("root children = %d, want 3", len(root))
	}
	// Vertex 100 differs from root at dim 2, so children flip dims 1, 0.
	v, _ := ParseVertex("100")
	kids := c.SBTChildren(u, v)
	wantKids := []string{"110", "101"}
	if len(kids) != 2 || kids[0].StringR(3) != wantKids[0] || kids[1].StringR(3) != wantKids[1] {
		t.Errorf("children of 100 = %v, want %v", kids, wantKids)
	}
	// Vertex 001 has lowest differing bit 0, so no children.
	if kids := c.SBTChildren(u, 1); len(kids) != 0 {
		t.Errorf("children of 001 = %v, want none", kids)
	}
}

func TestSBTParent(t *testing.T) {
	c := MustNew(4)
	u, _ := ParseVertex("0100")
	if _, ok := c.SBTParent(u, u); ok {
		t.Error("root must have no parent")
	}
	v, _ := ParseVertex("0111") // differs from 0100 at dims 0,1; parent flips dim 0.
	p, ok := c.SBTParent(u, v)
	if !ok || p.StringR(4) != "0110" {
		t.Errorf("parent(0111) = %s, want 0110", p.StringR(4))
	}
}

func TestInducedParentRejectsOutsideSubcube(t *testing.T) {
	c := MustNew(4)
	u, _ := ParseVertex("0100")
	w, _ := ParseVertex("0010")
	if _, _, err := c.InducedParent(u, w); err == nil {
		t.Error("InducedParent accepted vertex outside subcube")
	}
}

func TestInducedLevelsFigure4(t *testing.T) {
	// Figure 4(b): SBT_{H_4}(0100) has 1 + 3 + 3 + 1 vertices by level.
	c := MustNew(4)
	u, _ := ParseVertex("0100")
	levels := c.InducedLevels(u)
	wantSizes := []int{1, 3, 3, 1}
	if len(levels) != len(wantSizes) {
		t.Fatalf("levels = %d, want %d", len(levels), len(wantSizes))
	}
	for d, lvl := range levels {
		if len(lvl) != wantSizes[d] {
			t.Errorf("level %d size = %d, want %d", d, len(lvl), wantSizes[d])
		}
		for _, v := range lvl {
			if Hamming(u, v) != d {
				t.Errorf("vertex %s at level %d has Hamming distance %d",
					v.StringR(4), d, Hamming(u, v))
			}
		}
	}
}

// propRoot draws a random (r, root) pair for property tests.
func propRoot(rng *rand.Rand) (Cube, Vertex) {
	r := 1 + rng.Intn(12)
	c := MustNew(r)
	u := Vertex(rng.Uint64()) & c.Mask()
	return c, u
}

func TestPropertySBTSpansSubcubeExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		seen := make(map[Vertex]int)
		c.WalkInducedBFS(u, func(v Vertex, depth, genDim int) bool {
			seen[v]++
			return true
		})
		if uint64(len(seen)) != c.SubcubeSize(u) {
			return false
		}
		for _, v := range c.SubcubeVertices(u) {
			if seen[v] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDepthEqualsHammingDistance(t *testing.T) {
	// Lemma 3.2's structural basis: depth in the induced SBT equals the
	// number of extra one-bits relative to the root.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		ok := true
		c.WalkInducedBFS(u, func(v Vertex, depth, genDim int) bool {
			if depth != Hamming(u, v) || !v.Contains(u) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyParentChildConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		ok := true
		c.WalkInducedBFS(u, func(v Vertex, depth, genDim int) bool {
			for _, child := range c.InducedChildren(u, v) {
				p, has, err := c.InducedParent(u, child)
				if err != nil || !has || p != v {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSOrderIsNonDecreasingDepth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		last := -1
		ok := true
		c.WalkInducedBFS(u, func(v Vertex, depth, genDim int) bool {
			if depth < last {
				ok = false
				return false
			}
			last = depth
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLevelsAreBinomialCoefficients(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, u := propRoot(rng)
		free := c.Dim() - u.OnesCount()
		levels := c.InducedLevels(u)
		if len(levels) != free+1 {
			return false
		}
		// level d must have C(free, d) vertices.
		binom := 1
		for d, lvl := range levels {
			if len(lvl) != binom {
				return false
			}
			binom = binom * (free - d) / (d + 1)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWalkInducedBFSEarlyStop(t *testing.T) {
	c := MustNew(6)
	visits := 0
	c.WalkInducedBFS(0, func(v Vertex, depth, genDim int) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("visits = %d, want 5", visits)
	}
}

func TestNeighbor(t *testing.T) {
	v, _ := ParseVertex("0100")
	if got := v.Neighbor(0).StringR(4); got != "0101" {
		t.Errorf("Neighbor(0) = %s, want 0101", got)
	}
	if got := v.Neighbor(2).StringR(4); got != "0000" {
		t.Errorf("Neighbor(2) = %s, want 0000", got)
	}
	if v.Neighbor(1).Neighbor(1) != v {
		t.Error("Neighbor is not an involution")
	}
}
