package keysearch

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"testing"
	"time"
)

// crashSmokeObjects is the corpus the crash helper publishes and the
// parent verifies after recovery. Shared so both processes agree on
// the expected answers without an answer file.
var crashSmokeObjects = []Object{
	{ID: "alpha", Keywords: NewKeywordSet("storage", "dht", "index")},
	{ID: "beta", Keywords: NewKeywordSet("storage", "dht", "search")},
	{ID: "gamma", Keywords: NewKeywordSet("storage", "wal", "recovery")},
	{ID: "delta", Keywords: NewKeywordSet("chord", "ring")},
}

// TestCrashRecoveryHelper is the subprocess half of the crash smoke:
// it runs a durable single-node peer with fsync=always, publishes the
// smoke corpus, announces readiness, and then blocks until the parent
// SIGKILLs it. It is inert unless re-executed with KS_CRASH_HELPER=1.
func TestCrashRecoveryHelper(t *testing.T) {
	if os.Getenv("KS_CRASH_HELPER") != "1" {
		t.Skip("crash helper: only runs re-executed by TestCrashRecoverySmoke")
	}
	RegisterTypes()
	net := NewTCPTransport()
	peer, err := NewPeer(net, "127.0.0.1:0", Config{
		Dim:                 6,
		MaintenanceInterval: -1,
		DataDir:             os.Getenv("KS_CRASH_DIR"),
		FsyncPolicy:         "always",
	})
	if err != nil {
		fmt.Println("HELPER-ERROR:", err)
		os.Exit(1)
	}
	peer.Create()
	ctx := context.Background()
	for _, obj := range crashSmokeObjects {
		if err := peer.Publish(ctx, obj, "local://"+obj.ID); err != nil {
			fmt.Println("HELPER-ERROR:", err)
			os.Exit(1)
		}
	}
	// Every Publish returned with its WAL record fsynced (fsync=always),
	// so the data dir is crash-consistent from here on.
	fmt.Println("HELPER-READY")
	select {}
}

// TestCrashRecoverySmoke is the end-to-end acceptance check for the
// durability layer: a peer is populated in a child process, killed
// with SIGKILL mid-life (no shutdown path runs), and a fresh peer
// restarted over the same data directory must answer pin and superset
// searches exactly as the published corpus dictates.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRecoveryHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "KS_CRASH_HELPER=1", "KS_CRASH_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if line == "HELPER-READY" {
				ready <- nil
				return
			}
			if len(line) > 12 && line[:12] == "HELPER-ERROR" {
				ready <- fmt.Errorf("%s", line)
				return
			}
		}
		ready <- fmt.Errorf("helper exited before READY: %v", sc.Err())
	}()
	select {
	case err := <-ready:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("helper never became ready")
	}

	// SIGKILL: the helper gets no chance to flush, close, or snapshot.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Restart over the same data directory and interrogate the index.
	RegisterTypes()
	net := NewTCPTransport()
	defer net.Close()
	peer, err := NewPeer(net, "127.0.0.1:0", Config{
		Dim:                 6,
		MaintenanceInterval: -1,
		DataDir:             dir,
	})
	if err != nil {
		t.Fatalf("restart from %s: %v", dir, err)
	}
	defer peer.Close()
	peer.Create()

	if st := peer.IndexStats(); st.Objects == 0 {
		t.Fatalf("recovered index is empty: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, obj := range crashSmokeObjects {
		ids, _, err := peer.PinSearch(ctx, obj.Keywords)
		if err != nil {
			t.Fatalf("pin %v: %v", obj.Keywords, err)
		}
		if len(ids) != 1 || ids[0] != obj.ID {
			t.Errorf("pin %v = %v, want [%s]", obj.Keywords, ids, obj.ID)
		}
	}

	res, err := peer.Search(ctx, NewKeywordSet("storage"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Matches))
	for i, m := range res.Matches {
		got[i] = m.ObjectID
	}
	sort.Strings(got)
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("superset 'storage' = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("superset 'storage' = %v, want %v", got, want)
		}
	}
	if !res.Exhausted {
		t.Errorf("superset search not exhausted after recovery")
	}
}
