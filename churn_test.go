package keysearch

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/sim"
)

// churnCorpus returns n objects sharing the broad keyword "churn" plus
// a bucket keyword and a unique keyword, so superset searches have both
// wide and narrow roots and pin searches have exact targets.
func churnCorpus(n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{
			ID:       "obj-" + strconv.Itoa(i),
			Keywords: NewKeywordSet("churn", "b"+strconv.Itoa(i%5), "u"+strconv.Itoa(i)),
		}
	}
	return objs
}

func publishAll(t *testing.T, p *Peer, objs []Object) {
	t.Helper()
	ctx := context.Background()
	for _, obj := range objs {
		if err := p.Publish(ctx, obj, "/"+obj.ID); err != nil {
			t.Fatalf("publish %s: %v", obj.ID, err)
		}
	}
}

// stabilizeRounds runs synchronous maintenance rounds over peers
// WITHOUT draining migrations (unlike Cluster.Heal), so open
// double-read windows survive the rounds — churn tests depend on
// querying through a window, not after it.
func stabilizeRounds(ctx context.Context, peers []*Peer, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range peers {
			_ = p.StabilizeOnce(ctx)
		}
	}
}

// TestSearchDuringMigrationEquivalence freezes a live migration in the
// middle of its double-read window (one-entry chunks, an hour of
// throttle between them) and checks that pin and superset answers
// observed THROUGH the window are byte-identical to a static fleet
// that never churned: same matches, same order, same completeness. The
// joiner owns part of the corpus's range but holds only a prefix of
// it; the double-read merge with the old owner must hide that.
func TestSearchDuringMigrationEquivalence(t *testing.T) {
	ctx := context.Background()
	objs := churnCorpus(60)
	cfg := Config{Dim: 8}

	pinProbes := make([]Set, 0, 8)
	for i := 0; i < len(objs); i += 8 {
		pinProbes = append(pinProbes, objs[i].Keywords)
	}
	supProbes := []Set{NewKeywordSet("churn"), NewKeywordSet("b3")}

	type answers struct {
		pins    [][]string
		matches [][]Match
		exact   []bool
	}
	collect := func(t *testing.T, p *Peer) answers {
		t.Helper()
		var a answers
		for _, k := range pinProbes {
			ids, _, err := p.PinSearch(ctx, k)
			if err != nil {
				t.Fatalf("pin %v: %v", k, err)
			}
			a.pins = append(a.pins, ids)
		}
		for _, k := range supProbes {
			res, err := p.Search(ctx, k, All, SearchOptions{NoCache: true})
			if err != nil {
				t.Fatalf("superset %v: %v", k, err)
			}
			a.matches = append(a.matches, res.Matches)
			a.exact = append(a.exact, res.Completeness == 1 && res.FailedSubtrees == 0)
		}
		return a
	}

	base := newCluster(t, 5, cfg)
	publishAll(t, base.Peers[0], objs)
	want := collect(t, base.Peers[1])

	// Rebuild the same fleet (same addresses, so the same ring and the
	// same entry placement), then freeze a joiner mid-transfer. A
	// candidate joiner whose range holds fewer than two entries commits
	// instantly and opens no lasting window; try ring positions until
	// one freezes. The loop is deterministic: fixed addresses hash to
	// fixed ring positions.
	frozenCfg := cfg
	frozenCfg.MaintenanceInterval = -1
	frozenCfg.MigrateChunkEntries = 1
	frozenCfg.MigrateThrottle = time.Hour
	var (
		c      *Cluster
		joiner *Peer
	)
	for cand := 0; cand < 8 && joiner == nil; cand++ {
		c = newCluster(t, 5, cfg)
		publishAll(t, c.Peers[0], objs)
		p, err := NewPeer(c.Network(), Addr(fmt.Sprintf("mid-join-%d", cand)), frozenCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Join(ctx, c.Peers[0].Addr()); err != nil {
			t.Fatalf("join candidate %d: %v", cand, err)
		}
		c.Peers = append(c.Peers, p) // cluster cleanup closes it
		// An empty or single-entry range finishes well within this; a
		// frozen worker is asleep in its one-hour throttle.
		time.Sleep(100 * time.Millisecond)
		if p.MigrationStats().Active == 1 {
			joiner = p
		}
	}
	if joiner == nil {
		t.Fatal("no candidate joiner froze mid-transfer; corpus too small for the ring?")
	}
	// Converge the ring around the joiner so searches route to it while
	// its window is still open.
	stabilizeRounds(ctx, c.Peers, 12)
	if st := joiner.MigrationStats(); st.Active != 1 {
		t.Fatalf("window closed during stabilization: %+v", st)
	}

	got := collect(t, c.Peers[1])
	for i, k := range pinProbes {
		if !reflect.DeepEqual(got.pins[i], want.pins[i]) {
			t.Errorf("pin %v mid-window = %v, static fleet %v", k, got.pins[i], want.pins[i])
		}
	}
	for i, k := range supProbes {
		if !reflect.DeepEqual(got.matches[i], want.matches[i]) {
			t.Errorf("superset %v mid-window: %d matches, static fleet %d (or order/content differs)",
				k, len(got.matches[i]), len(want.matches[i]))
		}
		if !got.exact[i] || !want.exact[i] {
			t.Errorf("superset %v not exact: mid-window=%v static=%v", k, got.exact[i], want.exact[i])
		}
	}

	st := joiner.MigrationStats()
	if st.DoubleReads == 0 {
		t.Error("queries mid-window never double-read the old owner")
	}
	if st.Active != 1 || st.Commits != 0 {
		t.Errorf("transfer was supposed to stay frozen through the queries: %+v", st)
	}
}

// TestChurnFingerprintEquivalence replays a seed-generated membership
// schedule — joins of brand-new peers and graceful leaves — against a
// query run, with migrations throttled so double-read windows stay
// open across query boundaries, and demands the full outcome sequence
// (IDs in order, completeness, failed subtrees) fingerprint-identical
// to a static fleet that never churned. The final sweep additionally
// proves zero entries were lost across every transfer.
func TestChurnFingerprintEquivalence(t *testing.T) {
	objs := churnCorpus(50)
	queries := make([]Set, 0, 12)
	for i := 0; i < 12; i++ {
		if i%3 == 2 {
			queries = append(queries, NewKeywordSet("b"+strconv.Itoa(i%5)))
		} else {
			queries = append(queries, NewKeywordSet("churn"))
		}
	}
	const nBase = 6
	baseAddrs := make([]Addr, nBase)
	for i := range baseAddrs {
		baseAddrs[i] = Addr("peer-" + strconv.Itoa(i))
	}
	sched, err := sim.GenerateChurn(11, sim.ChurnConfig{
		Queries:  len(queries),
		Joins:    3,
		Leaves:   2,
		Leavable: baseAddrs[1:4], // never the anchor peer-0
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, churn bool) (fp string, doubleReads uint64) {
		t.Helper()
		ctx := context.Background()
		cfg := Config{Dim: 8, MigrateChunkEntries: 1, MigrateThrottle: 40 * time.Millisecond}
		c := newCluster(t, nBase, cfg)
		publishAll(t, c.Peers[0], objs)
		live := append([]*Peer(nil), c.Peers...)
		anchor := live[0]

		tally := func(p *Peer) { doubleReads += p.MigrationStats().DoubleReads }
		quiesce := func() {
			qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			for _, p := range live {
				if err := p.WaitMigrationsIdle(qctx); err != nil {
					t.Fatalf("quiesce: %v", err)
				}
			}
		}
		joinCfg := cfg
		joinCfg.MaintenanceInterval = -1
		apply := func(ev sim.FaultEvent) {
			switch ev.Kind {
			case sim.FaultJoin:
				p, err := NewPeer(c.Network(), ev.Node, joinCfg)
				if err != nil {
					t.Fatalf("join %s: %v", ev.Node, err)
				}
				if err := p.Join(ctx, anchor.Addr()); err != nil {
					t.Fatalf("join %s: %v", ev.Node, err)
				}
				live = append(live, p)
				c.Peers = append(c.Peers, p) // cluster cleanup closes it
				stabilizeRounds(ctx, live, 4)
			case sim.FaultLeave:
				// A leaver may be the source of an in-flight pull; quiesce
				// first so no window's remainder is orphaned behind the
				// departure (stabilization would heal it, but transiently —
				// and this test demands exactness at every query).
				quiesce()
				for i, p := range live {
					if p.Addr() != ev.Node {
						continue
					}
					tally(p)
					if _, err := p.Leave(ctx); err != nil {
						t.Fatalf("leave %s: %v", ev.Node, err)
					}
					live = append(live[:i], live[i+1:]...)
					break
				}
				// Departures leave stale fingers; repair is incremental,
				// so converge fully — a half-repaired ring fails subtrees,
				// which is chord routing, not migration.
				stabilizeRounds(ctx, live, 3*len(live)+3)
			}
		}

		outs := make([]sim.QueryOutcome, 0, len(queries)+1)
		record := func(q Set) {
			res, err := live[0].Search(ctx, q, All, SearchOptions{NoCache: true})
			out := sim.QueryOutcome{QueryKey: q.Key(), Completeness: 1}
			if err != nil {
				out.Err = err.Error()
				out.Completeness = 0
			} else {
				out.Completeness = res.Completeness
				out.FailedSubtrees = res.FailedSubtrees
				for _, m := range res.Matches {
					out.ObjectIDs = append(out.ObjectIDs, m.ObjectID)
				}
			}
			outs = append(outs, out)
		}

		ei := 0
		for qi, q := range queries {
			if churn {
				for ei < len(sched.Events) && sched.Events[ei].AtQuery <= qi {
					apply(sched.Events[ei])
					ei++
				}
			}
			record(q)
		}
		// Close the books: drain every window, fully re-converge, and
		// sweep — the churned fleet must have lost nothing.
		quiesce()
		stabilizeRounds(ctx, live, 3*len(live)+3)
		quiesce()
		record(NewKeywordSet("churn"))
		final := outs[len(outs)-1]
		if final.Err != "" || len(final.ObjectIDs) != len(objs) {
			t.Fatalf("churn=%v: final sweep found %d/%d entries (err=%q)",
				churn, len(final.ObjectIDs), len(objs), final.Err)
		}
		for _, p := range live {
			tally(p)
		}
		rep := sim.ChaosReport{Outcomes: outs}
		return rep.Fingerprint(), doubleReads
	}

	staticFP, _ := run(t, false)
	churnFP, dr := run(t, true)
	if staticFP != churnFP {
		t.Fatalf("outcome fingerprint diverged under churn:\n  static  %s\n  churned %s", staticFP, churnFP)
	}
	if dr == 0 {
		t.Error("churned run never double-read an old owner: no query observed an open window")
	}
}

// TestChurnHammer races searches, publishes/unpublishes, and
// join/leave cycles with live migrations against one cluster — the
// race-detector workout for the window state (tombstones, double-read
// merges, WAL-free path). Mid-churn searches may transiently degrade;
// the test only demands that nothing panics, no search errors, and the
// healed fleet answers exactly.
func TestChurnHammer(t *testing.T) {
	ctx := context.Background()
	objs := churnCorpus(24)
	cfg := Config{Dim: 7, MigrateChunkEntries: 1, MigrateThrottle: 2 * time.Millisecond}
	c := newCluster(t, 4, cfg)
	publishAll(t, c.Peers[0], objs)

	joinCfg := cfg
	joinCfg.MaintenanceInterval = -1

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // searcher
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := NewKeywordSet("churn")
			if i%3 == 1 {
				k = NewKeywordSet("b" + strconv.Itoa(i%5))
			}
			if _, err := c.Peers[0].Search(ctx, k, All, SearchOptions{NoCache: true}); err != nil {
				t.Errorf("search under churn: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // mutator: inserts and deletes racing open windows
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			obj := Object{ID: "tmp-" + strconv.Itoa(i%6), Keywords: NewKeywordSet("churn", "tmp"+strconv.Itoa(i%6))}
			if err := c.Peers[1].Publish(ctx, obj, "/tmp"); err != nil {
				t.Errorf("publish under churn: %v", err)
				return
			}
			if err := c.Peers[1].Unpublish(ctx, obj, "/tmp"); err != nil {
				t.Errorf("unpublish under churn: %v", err)
				return
			}
		}
	}()

	// Churner (foreground): three full join→stabilize→leave cycles with
	// migrations in flight throughout.
	for k := 0; k < 3; k++ {
		p, err := NewPeer(c.Network(), Addr("hammer-"+strconv.Itoa(k)), joinCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Join(ctx, c.Peers[0].Addr()); err != nil {
			t.Fatalf("hammer join %d: %v", k, err)
		}
		stabilizeRounds(ctx, append(append([]*Peer(nil), c.Peers...), p), 6)
		if _, err := p.Leave(ctx); err != nil {
			t.Fatalf("hammer leave %d: %v", k, err)
		}
		stabilizeRounds(ctx, c.Peers, 6)
	}
	close(stop)
	wg.Wait()

	hctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	c.Heal(hctx)
	res, err := c.Peers[2].Search(ctx, NewKeywordSet("churn"), All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool, len(res.Matches))
	for _, m := range res.Matches {
		if len(m.ObjectID) > 4 && m.ObjectID[:4] == "tmp-" {
			continue // mutator leftovers are its own business
		}
		found[m.ObjectID] = true
	}
	if len(found) != len(objs) {
		t.Fatalf("healed fleet finds %d/%d base objects", len(found), len(objs))
	}
}
