// Command filesharing models the paper's motivating application: a
// peer-to-peer file-sharing network where multimedia files are
// described by a few metadata keywords. It demonstrates replica
// handling (multiple peers publishing copies of the same file),
// threshold searches, cumulative browsing, and withdrawal.
//
// Run with:
//
//	go run ./examples/filesharing
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	keysearch "github.com/p2pkeyword/keysearch"
)

// track is a shared music file with its metadata.
type track struct {
	id       string
	keywords []string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := keysearch.NewLocalCluster(8, keysearch.Config{Dim: 10, CacheCapacity: 256})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	catalog := []track{
		{"blue-in-green", []string{"mp3", "jazz", "miles-davis", "1959"}},
		{"so-what", []string{"mp3", "jazz", "miles-davis", "1959", "modal"}},
		{"take-five", []string{"mp3", "jazz", "brubeck", "1959"}},
		{"giant-steps", []string{"mp3", "jazz", "coltrane"}},
		{"kind-of-blue-live", []string{"flac", "jazz", "miles-davis", "live"}},
		{"thriller", []string{"mp3", "pop", "jackson", "1982"}},
		{"billie-jean", []string{"mp3", "pop", "jackson", "1982", "single"}},
	}

	// Each track is published by two peers — replicas of the same
	// object ID; the index keeps a single entry per object while the
	// DHT records both copies.
	for i, tr := range catalog {
		obj := keysearch.Object{ID: tr.id, Keywords: keysearch.NewKeywordSet(tr.keywords...)}
		for replica := 0; replica < 2; replica++ {
			holder := cluster.Peers[(i+replica*3)%len(cluster.Peers)]
			loc := "/music/" + tr.id + ".r" + strconv.Itoa(replica)
			if err := holder.Publish(ctx, obj, loc); err != nil {
				return fmt.Errorf("publish %s: %w", tr.id, err)
			}
		}
	}
	fmt.Printf("published %d tracks (2 replicas each) across %d peers\n\n",
		len(catalog), len(cluster.Peers))

	me := cluster.Peers[0]

	// A broad search, general results first, capped at 4 hits.
	query := keysearch.NewKeywordSet("mp3", "jazz")
	res, err := me.Search(ctx, query, 4, keysearch.SearchOptions{Order: keysearch.TopDown})
	if err != nil {
		return err
	}
	fmt.Printf("search %v (threshold 4, general first) → %d hits, %d nodes contacted:\n",
		query, len(res.Matches), res.Stats.NodesContacted)
	for _, m := range res.Matches {
		fmt.Printf("  %-18s %v\n", m.ObjectID, m.Keywords())
	}

	// The same search, most specific tracks first.
	res, err = me.Search(ctx, query, 4, keysearch.SearchOptions{Order: keysearch.BottomUp})
	if err != nil {
		return err
	}
	fmt.Printf("\nsame search, specific first:\n")
	for _, m := range res.Matches {
		fmt.Printf("  %-18s %v (%d extra keywords)\n", m.ObjectID, m.Keywords(), m.Depth)
	}

	// Download: resolve replica references of the top hit.
	top := res.Matches[0].ObjectID
	refs, err := me.Fetch(ctx, top)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplicas of %q:\n", top)
	for _, r := range refs {
		fmt.Printf("  %s%s\n", r.Holder, r.Location)
	}

	// Cumulative browsing through everything tagged jazz, two at a
	// time — the traversal frontier stays on the responsible node.
	cur, err := me.SearchCursor(keysearch.NewKeywordSet("jazz"), keysearch.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nbrowsing all jazz, 2 per page:\n")
	for page := 1; !cur.Exhausted(); page++ {
		hits, _, err := cur.Next(ctx, 2)
		if err != nil {
			return err
		}
		for _, m := range hits {
			fmt.Printf("  page %d: %s\n", page, m.ObjectID)
		}
	}

	// One holder withdraws its copy of a track; the other replica
	// keeps the track searchable.
	victim := catalog[0]
	obj := keysearch.Object{ID: victim.id, Keywords: keysearch.NewKeywordSet(victim.keywords...)}
	if err := cluster.Peers[0].Unpublish(ctx, obj, "/music/"+victim.id+".r0"); err != nil {
		return err
	}
	refs, err = me.Fetch(ctx, victim.id)
	if err != nil {
		return err
	}
	fmt.Printf("\nafter one withdrawal, %q still has %d replica(s)\n", victim.id, len(refs))
	return nil
}
