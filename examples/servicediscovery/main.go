// Command servicediscovery uses the keyword layer for the paper's
// second target application: resource and service discovery. Services
// advertise themselves with attribute keywords (svc:…, region:…,
// proto:…, tier:…); clients locate matching endpoints with superset
// searches and refine by attribute. Deterministic attribute search —
// "all objects matching some specified attributes can be precisely
// located" — is exactly the guarantee the index gives.
//
// Run with:
//
//	go run ./examples/servicediscovery
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "github.com/p2pkeyword/keysearch"
)

type service struct {
	endpoint string
	attrs    []string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := keysearch.NewLocalCluster(6, keysearch.Config{Dim: 9})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	registry := []service{
		{"10.0.1.5:5432", []string{"svc:database", "proto:postgres", "region:eu-west", "tier:primary"}},
		{"10.0.1.6:5432", []string{"svc:database", "proto:postgres", "region:eu-west", "tier:replica"}},
		{"10.0.2.9:5432", []string{"svc:database", "proto:postgres", "region:us-east", "tier:primary"}},
		{"10.0.2.4:6379", []string{"svc:cache", "proto:redis", "region:us-east"}},
		{"10.0.1.7:6379", []string{"svc:cache", "proto:redis", "region:eu-west"}},
		{"10.0.3.1:9092", []string{"svc:queue", "proto:kafka", "region:eu-west", "tier:primary"}},
	}
	for i, s := range registry {
		obj := keysearch.Object{ID: s.endpoint, Keywords: keysearch.NewKeywordSet(s.attrs...)}
		if err := cluster.Peers[i%len(cluster.Peers)].Publish(ctx, obj, "registry"); err != nil {
			return fmt.Errorf("advertise %s: %w", s.endpoint, err)
		}
	}
	fmt.Printf("advertised %d services\n\n", len(registry))

	client := cluster.Peers[5]

	// Find every EU-West database.
	query := keysearch.NewKeywordSet("svc:database", "region:eu-west")
	res, err := client.Search(ctx, query, keysearch.All, keysearch.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("databases in eu-west (%d nodes contacted):\n", res.Stats.NodesContacted)
	for _, m := range res.Matches {
		fmt.Printf("  %-16s %v\n", m.ObjectID, m.Keywords())
	}

	// Refinement: the categories of extra attributes tell the client
	// how to narrow the result (Lemma 3.2's ranking for free).
	fmt.Println("\nrefinement options:")
	for _, cat := range keysearch.Categorize(query, res.Matches) {
		if cat.Extra == "" {
			continue
		}
		fmt.Printf("  add %v → %d service(s)\n", cat.ExtraKeywords(), len(cat.Matches))
	}

	// The refined query touches a subcube of the broad query's search
	// space (Lemma 3.3), so it contacts no more nodes.
	refined := query.Union(keysearch.NewKeywordSet("tier:primary"))
	res2, err := client.Search(ctx, refined, keysearch.All, keysearch.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nrefined to tier:primary (%d nodes contacted ≤ %d):\n",
		res2.Stats.NodesContacted, res.Stats.NodesContacted)
	for _, m := range res2.Matches {
		fmt.Printf("  %-16s\n", m.ObjectID)
	}

	// Exact-attribute pin search: a known full attribute set resolves
	// in a single lookup.
	ids, stats, err := client.PinSearch(ctx,
		keysearch.NewKeywordSet("svc:cache", "proto:redis", "region:us-east"))
	if err != nil {
		return err
	}
	fmt.Printf("\npin search for the exact us-east redis spec: %v (%d message round trip)\n",
		ids, stats.Messages/2)
	return nil
}
