// Command quickstart is the smallest end-to-end tour of the keysearch
// library: build an in-process cluster, publish objects with keyword
// metadata, and run pin and superset searches.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	keysearch "github.com/p2pkeyword/keysearch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A five-peer network with an 8-dimensional index hypercube
	// (2^8 = 256 logical index nodes spread over the five peers).
	cluster, err := keysearch.NewLocalCluster(5, keysearch.Config{Dim: 8})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	// Publish a few objects from different peers. Each object is
	// described by a keyword set, like the Keyword field of the
	// paper's website directory records.
	objects := []keysearch.Object{
		{ID: "hinet", Keywords: keysearch.NewKeywordSet("isp", "telecommunication", "network", "download")},
		{ID: "tvbs", Keywords: keysearch.NewKeywordSet("tvbs", "news")},
		{ID: "epaper", Keywords: keysearch.NewKeywordSet("news", "network", "daily")},
	}
	for i, obj := range objects {
		publisher := cluster.Peers[i%len(cluster.Peers)]
		if err := publisher.Publish(ctx, obj, "/files/"+obj.ID); err != nil {
			return fmt.Errorf("publish %s: %w", obj.ID, err)
		}
		fmt.Printf("published %-8s with keywords %v\n", obj.ID, obj.Keywords)
	}

	searcher := cluster.Peers[4]

	// Pin search: exact keyword set, one lookup.
	ids, stats, err := searcher.PinSearch(ctx, keysearch.NewKeywordSet("tvbs", "news"))
	if err != nil {
		return err
	}
	fmt.Printf("\npin search {news, tvbs}: %v (%d node, %d messages)\n",
		ids, stats.NodesContacted, stats.Messages)

	// Superset search: every object that can be described by "news".
	res, err := searcher.Search(ctx, keysearch.NewKeywordSet("news"), keysearch.All, keysearch.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nsuperset search {news} found %d objects (%d nodes contacted):\n",
		len(res.Matches), res.Stats.NodesContacted)
	for _, m := range res.Matches {
		fmt.Printf("  %-8s keywords %v (%d extra keyword(s))\n", m.ObjectID, m.Keywords(), m.Depth)
	}

	// Fetch replica references of a hit through the DHT.
	refs, err := searcher.Fetch(ctx, res.Matches[0].ObjectID)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplicas of %s:\n", res.Matches[0].ObjectID)
	for _, r := range refs {
		fmt.Printf("  held by %s at %s\n", r.Holder, r.Location)
	}
	return nil
}
