// Command refine walks through the paper's interactive search
// scenario (Section 3.3): a user starts with a broad keyword set,
// browses a few results at a time through a cumulative cursor, asks
// the layer for refinement samples (one object per extra-keyword
// category), and then narrows the query — whose search space is a
// subcube of the original (Lemma 3.3).
//
// Run with:
//
//	go run ./examples/refine
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	keysearch "github.com/p2pkeyword/keysearch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := keysearch.NewLocalCluster(6, keysearch.Config{Dim: 10})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx := context.Background()

	// A small photo-sharing corpus: everything is tagged "photo", with
	// varying extra tags.
	subjects := []string{"sunset", "beach", "city", "mountain"}
	styles := []string{"bw", "hdr"}
	n := 0
	for _, subj := range subjects {
		for i := 0; i < 4; i++ {
			tags := []string{"photo", subj}
			if i%2 == 1 {
				tags = append(tags, styles[i/2%len(styles)])
			}
			id := subj + "-" + strconv.Itoa(i)
			obj := keysearch.Object{ID: id, Keywords: keysearch.NewKeywordSet(tags...)}
			if err := cluster.Peers[n%len(cluster.Peers)].Publish(ctx, obj, "/photos/"+id); err != nil {
				return err
			}
			n++
		}
	}
	fmt.Printf("published %d photos\n\n", n)

	me := cluster.Peers[0]
	broad := keysearch.NewKeywordSet("photo")

	// Step 1: browse the broad query three results at a time.
	cur, err := me.SearchCursor(broad, keysearch.SearchOptions{})
	if err != nil {
		return err
	}
	fmt.Println("browsing 'photo' (3 per page):")
	var all []keysearch.Match
	for page := 1; !cur.Exhausted() && page <= 3; page++ {
		hits, stats, err := cur.Next(ctx, 3)
		if err != nil {
			return err
		}
		fmt.Printf("  page %d (%d nodes contacted):", page, stats.NodesContacted)
		for _, m := range hits {
			fmt.Printf(" %s", m.ObjectID)
		}
		fmt.Println()
		all = append(all, hits...)
	}

	// Step 2: ask for refinement samples — one object per extra
	// keyword category seen so far.
	fmt.Println("\nrefinement samples from the browsed results:")
	for _, cat := range keysearch.SampleCategories(broad, all, 1) {
		if cat.Extra == "" {
			fmt.Printf("  exactly 'photo': e.g. %s\n", cat.Matches[0].ObjectID)
			continue
		}
		fmt.Printf("  +%v: e.g. %s\n", cat.ExtraKeywords(), cat.Matches[0].ObjectID)
	}

	// Step 3: refine. The new query's subhypercube is contained in the
	// old one, so the refined search is never broader.
	broadRes, err := me.Search(ctx, broad, keysearch.All, keysearch.SearchOptions{NoCache: true})
	if err != nil {
		return err
	}
	refined := broad.Union(keysearch.NewKeywordSet("sunset"))
	refinedRes, err := me.Search(ctx, refined, keysearch.All, keysearch.SearchOptions{NoCache: true})
	if err != nil {
		return err
	}
	fmt.Printf("\nbroad search contacted %d nodes; refined %v contacted %d (Lemma 3.3: never more)\n",
		broadRes.Stats.NodesContacted, refined, refinedRes.Stats.NodesContacted)
	fmt.Println("refined results:")
	for _, m := range refinedRes.Matches {
		fmt.Printf("  %-12s %v\n", m.ObjectID, m.Keywords())
	}
	return nil
}
