package keysearch

import (
	"context"
	"testing"
	"time"
)

// TestTCPClusterEndToEnd runs three peers over real TCP sockets:
// create/join, synchronous stabilization, publish, superset search,
// and fetch.
func TestTCPClusterEndToEnd(t *testing.T) {
	RegisterTypes()
	net := NewTCPTransport()
	defer net.Close()

	cfg := Config{Dim: 6, MaintenanceInterval: -1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var peers []*Peer
	for i := 0; i < 3; i++ {
		p, err := NewPeer(net, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		if i == 0 {
			p.Create()
		} else if err := p.Join(ctx, peers[0].Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		peers = append(peers, p)
		for round := 0; round < 12; round++ {
			for _, q := range peers {
				_ = q.StabilizeOnce(ctx)
			}
		}
	}

	obj := Object{ID: "tcp-obj", Keywords: NewKeywordSet("distributed", "systems", "go")}
	if err := peers[1].Publish(ctx, obj, "/data/tcp-obj"); err != nil {
		t.Fatalf("Publish over TCP: %v", err)
	}

	res, err := peers[2].Search(ctx, NewKeywordSet("distributed"), All, SearchOptions{})
	if err != nil {
		t.Fatalf("Search over TCP: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ObjectID != "tcp-obj" {
		t.Fatalf("Search = %+v", res.Matches)
	}

	refs, err := peers[0].Fetch(ctx, "tcp-obj")
	if err != nil || len(refs) != 1 {
		t.Fatalf("Fetch = %v, %v", refs, err)
	}
	if refs[0].Holder != peers[1].Addr() {
		t.Errorf("holder = %s, want %s", refs[0].Holder, peers[1].Addr())
	}

	// Batched parallel search over TCP: exercises the msgSubQueryBatch
	// gob round trip against real sockets. Fewer physical frames than
	// logical messages proves waves actually coalesced.
	pres, err := peers[2].Search(ctx, NewKeywordSet("distributed"), All,
		SearchOptions{Order: ParallelLevels, NoCache: true})
	if err != nil {
		t.Fatalf("ParallelLevels search over TCP: %v", err)
	}
	if len(pres.Matches) != 1 || pres.Matches[0].ObjectID != "tcp-obj" {
		t.Fatalf("ParallelLevels search = %+v", pres.Matches)
	}
	if pres.Stats.PhysFrames <= 0 || pres.Stats.PhysFrames >= pres.Stats.Messages {
		t.Errorf("PhysFrames = %d, Messages = %d: batching saved nothing over TCP",
			pres.Stats.PhysFrames, pres.Stats.Messages)
	}

	// Pin search and cursor over TCP as well.
	ids, _, err := peers[0].PinSearch(ctx, obj.Keywords)
	if err != nil || len(ids) != 1 {
		t.Fatalf("PinSearch = %v, %v", ids, err)
	}
	cur, err := peers[2].SearchCursor(NewKeywordSet("go"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := cur.Next(ctx, 10)
	if err != nil || len(page) != 1 {
		t.Fatalf("cursor page = %v, %v", page, err)
	}
}
