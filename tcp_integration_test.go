package keysearch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// TestTCPClusterEndToEnd runs three peers over real TCP sockets:
// create/join, synchronous stabilization, publish, superset search,
// and fetch.
func TestTCPClusterEndToEnd(t *testing.T) {
	RegisterTypes()
	net := NewTCPTransport()
	defer net.Close()

	cfg := Config{Dim: 6, MaintenanceInterval: -1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var peers []*Peer
	for i := 0; i < 3; i++ {
		p, err := NewPeer(net, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		if i == 0 {
			p.Create()
		} else if err := p.Join(ctx, peers[0].Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		peers = append(peers, p)
		for round := 0; round < 12; round++ {
			for _, q := range peers {
				_ = q.StabilizeOnce(ctx)
			}
		}
	}

	obj := Object{ID: "tcp-obj", Keywords: NewKeywordSet("distributed", "systems", "go")}
	if err := peers[1].Publish(ctx, obj, "/data/tcp-obj"); err != nil {
		t.Fatalf("Publish over TCP: %v", err)
	}

	res, err := peers[2].Search(ctx, NewKeywordSet("distributed"), All, SearchOptions{})
	if err != nil {
		t.Fatalf("Search over TCP: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ObjectID != "tcp-obj" {
		t.Fatalf("Search = %+v", res.Matches)
	}

	refs, err := peers[0].Fetch(ctx, "tcp-obj")
	if err != nil || len(refs) != 1 {
		t.Fatalf("Fetch = %v, %v", refs, err)
	}
	if refs[0].Holder != peers[1].Addr() {
		t.Errorf("holder = %s, want %s", refs[0].Holder, peers[1].Addr())
	}

	// Batched parallel search over TCP: exercises the msgSubQueryBatch
	// gob round trip against real sockets. Fewer physical frames than
	// logical messages proves waves actually coalesced.
	pres, err := peers[2].Search(ctx, NewKeywordSet("distributed"), All,
		SearchOptions{Order: ParallelLevels, NoCache: true})
	if err != nil {
		t.Fatalf("ParallelLevels search over TCP: %v", err)
	}
	if len(pres.Matches) != 1 || pres.Matches[0].ObjectID != "tcp-obj" {
		t.Fatalf("ParallelLevels search = %+v", pres.Matches)
	}
	if pres.Stats.PhysFrames <= 0 || pres.Stats.PhysFrames >= pres.Stats.Messages {
		t.Errorf("PhysFrames = %d, Messages = %d: batching saved nothing over TCP",
			pres.Stats.PhysFrames, pres.Stats.Messages)
	}

	// Pin search and cursor over TCP as well.
	ids, _, err := peers[0].PinSearch(ctx, obj.Keywords)
	if err != nil || len(ids) != 1 {
		t.Fatalf("PinSearch = %v, %v", ids, err)
	}
	cur, err := peers[2].SearchCursor(NewKeywordSet("go"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := cur.Next(ctx, 10)
	if err != nil || len(page) != 1 {
		t.Fatalf("cursor page = %v, %v", page, err)
	}
}

// runTCPWireCluster stands up a 3-peer TCP cluster under the given
// wire mode, publishes a corpus on the first peer BEFORE the others
// join (so the joins pull real migration chunks over the wire), runs a
// fixed query suite — pin, superset top-down, superset parallel-batch,
// prefix multicast, cursor paging — and returns a canonical
// fingerprint of every answer
// plus the telemetry registry for wire-level assertions.
func runTCPWireCluster(t *testing.T, mode string) (string, *telemetry.Registry) {
	t.Helper()
	RegisterTypes()
	reg := telemetry.New(0)
	net, err := NewTCPTransportConfig(TCPConfig{Wire: mode})
	if err != nil {
		t.Fatal(err)
	}
	net.SetTelemetry(reg)
	defer net.Close()

	cfg := Config{Dim: 6, MaintenanceInterval: -1}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	objs := churnCorpus(24)
	p0, err := NewPeer(net, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p0.Create()
	publishAll(t, p0, objs)

	peers := []*Peer{p0}
	for i := 1; i < 3; i++ {
		p, err := NewPeer(net, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		if err := p.Join(ctx, p0.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		peers = append(peers, p)
		for round := 0; round < 12; round++ {
			for _, q := range peers {
				_ = q.StabilizeOnce(ctx)
			}
		}
	}

	// The joins must have moved index entries via the migration
	// protocol over this wire mode (double-read keeps answers exact
	// while transfers are still in flight, so no settling poll needed).
	migrated := reg.CounterVec("transport_tcp_handled_total", "type").With("core.msgMigrateChunk")
	deadline := time.Now().Add(20 * time.Second)
	for migrated.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if migrated.Value() == 0 {
		t.Fatalf("%s: no msgMigrateChunk handled over TCP after joins", mode)
	}

	var lines []string
	record := func(op, q string, ids []string) {
		sort.Strings(ids)
		lines = append(lines, op+"|"+q+"|"+strings.Join(ids, ","))
	}
	for _, obj := range objs {
		ids, _, err := peers[2].PinSearch(ctx, obj.Keywords)
		if err != nil {
			t.Fatalf("%s: pin %s: %v", mode, obj.ID, err)
		}
		record("pin", obj.Keywords.String(), ids)
	}
	for qi, q := range []Set{NewKeywordSet("churn"), NewKeywordSet("b0"), NewKeywordSet("b3")} {
		for _, order := range []TraversalOrder{TopDown, ParallelLevels} {
			res, err := peers[1].Search(ctx, q, All, SearchOptions{Order: order, NoCache: true})
			if err != nil {
				t.Fatalf("%s: superset %d order %v: %v", mode, qi, order, err)
			}
			ids := make([]string, 0, len(res.Matches))
			for _, m := range res.Matches {
				ids = append(ids, m.ObjectID)
			}
			record(fmt.Sprintf("superset-%v", order), q.String(), ids)
		}
	}
	// Prefix multicasts over the same wire mode — still inside the
	// migration window the joins opened, so double-reads cover them.
	for _, pfx := range []string{"b", "chu", "u1", "nomatch"} {
		res, err := peers[1].PrefixSearch(ctx, pfx, All, SearchOptions{NoCache: true})
		if err != nil {
			t.Fatalf("%s: prefix %q: %v", mode, pfx, err)
		}
		ids := make([]string, 0, len(res.Matches))
		for _, m := range res.Matches {
			ids = append(ids, m.ObjectID)
		}
		record("prefix", pfx, ids)
	}
	cur, err := peers[2].SearchCursor(NewKeywordSet("churn"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for pg := 0; !cur.Exhausted(); pg++ {
		page, _, err := cur.Next(ctx, 7)
		if err != nil {
			t.Fatalf("%s: cursor page %d: %v", mode, pg, err)
		}
		ids := make([]string, 0, len(page))
		for _, m := range page {
			ids = append(ids, m.ObjectID)
		}
		record("cursor-page-"+strconv.Itoa(pg), "churn", ids)
	}

	h := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(h[:]), reg
}

// TestTCPWireModeMatrix proves the -wire knob is answer-preserving:
// the same cluster build, publish, migration and query suite run under
// both wire protocols must produce byte-identical answer fingerprints,
// and each mode must have actually exercised pin, superset, batch and
// migrate messages on the wire (not fallen back to some other path).
func TestTCPWireModeMatrix(t *testing.T) {
	fps := map[string]string{}
	for _, mode := range []string{WireBinary, WireGob} {
		fp, reg := runTCPWireCluster(t, mode)
		fps[mode] = fp
		handled := reg.CounterVec("transport_tcp_handled_total", "type")
		// Pin queries ride msgTQuery (ClassPin) since the query classes
		// were unified; msgPinQuery remains wire-decodable for old
		// clients but no current client emits it.
		for _, typ := range []string{
			"core.msgTQuery", "core.msgSubQueryBatch",
			"core.msgMigrateChunk", "core.msgMigrateCommit",
		} {
			if handled.With(typ).Value() == 0 {
				t.Errorf("%s: no %s handled over TCP", mode, typ)
			}
		}
		// The per-type byte accounting must have charged traffic in
		// both directions for the batch path.
		for _, name := range []string{"transport_tcp_bytes_sent_total", "transport_tcp_bytes_recv_total"} {
			if reg.CounterVec(name, "type").With("core.msgSubQueryBatch").Value() == 0 {
				t.Errorf("%s: %s{core.msgSubQueryBatch} is zero", mode, name)
			}
		}
	}
	if fps[WireBinary] != fps[WireGob] {
		t.Fatalf("wire modes disagree: binary fingerprint %s != gob %s", fps[WireBinary], fps[WireGob])
	}
}
