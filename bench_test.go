package keysearch

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 4) plus ablations over the design choices of
// Sections 3.3–3.5. Each benchmark regenerates its figure's series
// against the synthetic PCHome-substitute workload and reports the
// headline scalar through b.ReportMetric; set KSBENCH_PRINT=1 to also
// print the full tables, and KSBENCH_FULL=1 to run at full paper
// scale (131,180 objects / 178,000 queries) instead of the scaled
// default.
//
// Run with:
//
//	go test -bench=. -benchmem
//	KSBENCH_PRINT=1 go test -bench=Fig6 -benchtime=1x

import (
	"context"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/analytic"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/sim"
)

func benchScale() (objects, queries, templates int) {
	if os.Getenv("KSBENCH_FULL") != "" {
		return corpus.DefaultObjects, 178000, 2000
	}
	return 20000, 20000, 500
}

func benchOut() io.Writer {
	if os.Getenv("KSBENCH_PRINT") != "" {
		return os.Stdout
	}
	return io.Discard
}

var (
	benchOnce   sync.Once
	benchCorpus *corpus.Corpus
	benchLog    *corpus.QueryLog
	benchErr    error
)

func benchWorkload(b *testing.B) (*corpus.Corpus, *corpus.QueryLog) {
	b.Helper()
	benchOnce.Do(func() {
		objects, queries, templates := benchScale()
		benchCorpus, benchErr = corpus.Generate(corpus.Config{Objects: objects, Seed: 1})
		if benchErr != nil {
			return
		}
		benchLog, benchErr = corpus.GenerateQueryLog(benchCorpus, corpus.QueryLogConfig{
			Queries:   queries,
			Templates: templates,
			Seed:      2,
		})
	})
	if benchErr != nil {
		b.Fatalf("workload: %v", benchErr)
	}
	return benchCorpus, benchLog
}

// BenchmarkTable1SampleRecords regenerates the corpus whose records
// mirror Table 1's schema.
func BenchmarkTable1SampleRecords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := corpus.Generate(corpus.Config{Objects: 1000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if c.Len() != 1000 {
			b.Fatal("short corpus")
		}
	}
}

// BenchmarkFig5KeywordSetSizes regenerates the keyword-set-size
// distribution and reports its mean (paper: 7.3).
func BenchmarkFig5KeywordSetSizes(b *testing.B) {
	c, _ := benchWorkload(b)
	var res sim.Fig5Result
	for i := 0; i < b.N; i++ {
		res = sim.Fig5(c)
	}
	sim.RenderFig5(benchOut(), res)
	b.ReportMetric(res.Mean, "mean-keywords")
}

// BenchmarkFig6LoadDistribution regenerates the load-distribution
// curves for the hypercube scheme (r = 6..16), the DHT direct-hash
// reference, and the DII baseline (r = 10, 12, 14). It reports the
// hypercube/DII Gini gap at r = 10 (paper: DII far more skewed).
func BenchmarkFig6LoadDistribution(b *testing.B) {
	c, _ := benchWorkload(b)
	var curves []sim.LoadCurve
	for i := 0; i < b.N; i++ {
		curves = curves[:0]
		for _, r := range []int{6, 8, 10, 12, 14, 16} {
			for _, scheme := range []sim.LoadScheme{sim.SchemeHypercube, sim.SchemeDHT} {
				lc, err := sim.Fig6Load(c, scheme, r)
				if err != nil {
					b.Fatal(err)
				}
				curves = append(curves, lc)
			}
		}
		for _, r := range []int{10, 12, 14} {
			lc, err := sim.Fig6Load(c, sim.SchemeDII, r)
			if err != nil {
				b.Fatal(err)
			}
			curves = append(curves, lc)
		}
	}
	sim.RenderFig6(benchOut(), curves, []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75})
	var hyper10, dii10 float64
	for _, lc := range curves {
		if lc.R == 10 && lc.Scheme == sim.SchemeHypercube {
			hyper10 = lc.Gini()
		}
		if lc.R == 10 && lc.Scheme == sim.SchemeDII {
			dii10 = lc.Gini()
		}
	}
	b.ReportMetric(hyper10, "hypercube-gini-r10")
	b.ReportMetric(dii10, "dii-gini-r10")
}

// BenchmarkFig7ObjectVsNodeDistribution regenerates the eight Figure 7
// charts and reports the total-variation distance at r = 10, the
// paper's empirical optimum.
func BenchmarkFig7ObjectVsNodeDistribution(b *testing.B) {
	c, _ := benchWorkload(b)
	var tv10 float64
	for i := 0; i < b.N; i++ {
		for _, r := range []int{6, 8, 10, 12, 13, 14, 15, 16} {
			res, err := sim.Fig7(c, r)
			if err != nil {
				b.Fatal(err)
			}
			if r == 10 {
				tv10 = sim.TotalVariation(res.NodePMF, res.ObjectPMF)
				sim.RenderFig7(benchOut(), res)
			}
		}
	}
	b.ReportMetric(tv10, "tv-distance-r10")
}

// BenchmarkFig8QueryCacheless regenerates the cacheless query study at
// r = 10 for query sizes m = 1..5 and reports the fraction of nodes
// contacted at 100 % recall for m = 1 (paper: ≈ 2^-m).
func BenchmarkFig8QueryCacheless(b *testing.B) {
	c, log := benchWorkload(b)
	d, err := sim.NewDeployment(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		b.Fatal(err)
	}
	recalls := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	var lines []sim.Fig8Line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for m := 1; m <= 5; m++ {
			qs := log.PopularOfSize(m, 5)
			if len(qs) == 0 {
				continue
			}
			line, err := sim.Fig8(d, qs, recalls)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, line)
		}
	}
	b.StopTimer()
	sim.RenderFig8(benchOut(), lines)
	if len(lines) > 0 {
		b.ReportMetric(lines[0].NodesFrac[len(recalls)-1], "m1-nodes-frac-100pct")
	}
}

// BenchmarkFig9QueryWithCache regenerates the cache study at r = 10
// (recall 100 %) and reports the average fraction of nodes contacted
// at α = 1/6 (paper: < 1 %).
func BenchmarkFig9QueryWithCache(b *testing.B) {
	c, _ := benchWorkload(b)
	_, queries, templates := benchScale()
	// Figure 9 uses the result-capped log (see EXPERIMENTS.md's
	// calibration note): popular queries with modest result sets are
	// the regime where per-root caching matches the paper.
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries:            queries,
		Templates:          templates,
		Seed:               2,
		MaxTemplateResults: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	alphas := []float64{0, 1.0 / 6}
	var points []sim.Fig9Point
	for i := 0; i < b.N; i++ {
		points, err = sim.Fig9(c, log, 10, alphas, 1.0, queries)
		if err != nil {
			b.Fatal(err)
		}
	}
	sim.RenderFig9(benchOut(), 10, 1.0, points)
	if len(points) == 2 {
		b.ReportMetric(100*points[0].AvgNodesFrac, "pct-nodes-cacheless")
		b.ReportMetric(100*points[1].AvgNodesFrac, "pct-nodes-alpha-sixth")
	}
}

// BenchmarkEq1OneBitsDistribution evaluates Equation (1) across the
// parameter grid used in Section 3.5.
func BenchmarkEq1OneBitsDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for r := 6; r <= 16; r++ {
			for m := 1; m <= 20; m++ {
				if _, err := analytic.OneBitsDistribution(r, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkSec35OperationCosts verifies the single-lookup costs of
// insert / pin search / delete claimed in Section 3.5.
func BenchmarkSec35OperationCosts(b *testing.B) {
	c, _ := benchWorkload(b)
	d, err := sim.NewDeployment(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var costs []sim.OpCost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs, err = sim.OpCosts(d, c, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sim.RenderOpCosts(benchOut(), costs)
	for _, oc := range costs {
		if oc.AvgMessages != 2 {
			b.Fatalf("%s cost %.2f messages, want 2", oc.Op, oc.AvgMessages)
		}
	}
	b.ReportMetric(2, "msgs-per-op")
}

// BenchmarkAblationTraversalOrders compares top-down, bottom-up and
// parallel traversals on the same popular query (Section 3.3's design
// alternatives).
func BenchmarkAblationTraversalOrders(b *testing.B) {
	c, log := benchWorkload(b)
	d, err := sim.NewDeployment(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		b.Fatal(err)
	}
	qs := log.PopularOfSize(2, 1)
	if len(qs) == 0 {
		b.Skip("no size-2 query template")
	}
	var costs []sim.TraversalCost
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs, err = sim.CompareTraversals(d, qs[0], 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, tc := range costs {
		b.Logf("%-16v nodes=%d msgs=%d rounds=%d matches=%d", tc.Order, tc.Nodes, tc.Msgs, tc.Rounds, tc.Matches)
	}
}

// BenchmarkAblationDimension sweeps r and reports how the exhaustive
// search space of a fixed two-keyword query scales as 2^(r-|One|)
// (the Section 3.4 argument for decomposing large keyword spaces).
func BenchmarkAblationDimension(b *testing.B) {
	c, log := benchWorkload(b)
	qs := log.PopularOfSize(2, 1)
	if len(qs) == 0 {
		b.Skip("no size-2 query template")
	}
	q := qs[0]
	ctx := context.Background()
	for _, r := range []int{8, 10, 12} {
		b.Run("r="+strconv.Itoa(r), func(b *testing.B) {
			d, err := sim.NewDeployment(r, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if err := d.InsertCorpus(c); err != nil {
				b.Fatal(err)
			}
			var nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := d.Client.SupersetSearch(ctx, q, All, SearchOptions{NoCache: true})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Stats.NodesContacted
			}
			b.ReportMetric(float64(nodes), "nodes-contacted")
		})
	}
}

// BenchmarkAblationCacheHitPath isolates the cache fast path: the same
// query repeated against a warm root cache.
func BenchmarkAblationCacheHitPath(b *testing.B) {
	c, log := benchWorkload(b)
	d, err := sim.NewDeployment(10, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		b.Fatal(err)
	}
	qs := log.PopularOfSize(1, 1)
	if len(qs) == 0 {
		b.Skip("no size-1 template")
	}
	ctx := context.Background()
	if _, err := d.Client.SupersetSearch(ctx, qs[0], 20, SearchOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Client.SupersetSearch(ctx, qs[0], 20, SearchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stats.CacheHit {
			b.Fatal("expected warm cache hit")
		}
	}
}

// BenchmarkMicroPinSearch measures the pin-search fast path.
func BenchmarkMicroPinSearch(b *testing.B) {
	c, _ := benchWorkload(b)
	d, err := sim.NewDeployment(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		b.Fatal(err)
	}
	rec := c.Records()[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Client.PinSearch(ctx, rec.Keywords); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroInsertDelete measures the single-entry index update
// path.
func BenchmarkMicroInsertDelete(b *testing.B) {
	d, err := sim.NewDeployment(10, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	obj := Object{ID: "bench", Keywords: NewKeywordSet("a", "b", "c")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Client.Insert(ctx, obj); err != nil {
			b.Fatal(err)
		}
		if _, _, err := d.Client.Delete(ctx, obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveBatching runs the same exhaustive parallel search on a
// 64-peer fleet at r = 10 with wave batching off and on. It fails
// unless the batched run sends at least 3x fewer physical RPC frames
// while returning a byte-identical match sequence, and reports both
// frame counts and the reduction factor.
func BenchmarkWaveBatching(b *testing.B) {
	c, log := benchWorkload(b)
	qs := log.PopularOfSize(1, 1)
	if len(qs) == 0 {
		b.Skip("no size-1 query template")
	}
	q := qs[0]
	build := func(mode BatchMode) *sim.Deployment {
		d, err := sim.NewCustomDeployment(sim.DeployConfig{R: 10, Peers: 64, Batch: mode})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.InsertCorpus(c); err != nil {
			d.Close()
			b.Fatal(err)
		}
		return d
	}
	off := build(BatchOff)
	defer off.Close()
	on := build(BatchOn)
	defer on.Close()

	ctx := context.Background()
	opts := SearchOptions{Order: ParallelLevels, NoCache: true}
	var framesOff, framesOn int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ro, err := off.Client.SupersetSearch(ctx, q, All, opts)
		if err != nil {
			b.Fatal(err)
		}
		rb, err := on.Client.SupersetSearch(ctx, q, All, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(ro.Matches) != len(rb.Matches) {
			b.Fatalf("match count diverged: %d unbatched, %d batched", len(ro.Matches), len(rb.Matches))
		}
		for j := range ro.Matches {
			if ro.Matches[j] != rb.Matches[j] {
				b.Fatalf("match[%d] diverged: %+v vs %+v", j, ro.Matches[j], rb.Matches[j])
			}
		}
		framesOff, framesOn = ro.Stats.PhysFrames, rb.Stats.PhysFrames
	}
	b.StopTimer()
	if framesOn == 0 || framesOff < 3*framesOn {
		b.Fatalf("frame reduction below 3x: %d unbatched vs %d batched", framesOff, framesOn)
	}
	b.ReportMetric(float64(framesOff), "frames-unbatched")
	b.ReportMetric(float64(framesOn), "frames-batched")
	b.ReportMetric(float64(framesOff)/float64(framesOn), "frame-reduction")
}

// BenchmarkFaultToleranceStudy regenerates the Sections 1/3.4
// fault-tolerance comparison: hypercube searches degrade gracefully
// while the DII baseline blocks whole keywords.
func BenchmarkFaultToleranceStudy(b *testing.B) {
	c, log := benchWorkload(b)
	queries := sim.FaultStudyQueries(log, 5)
	if len(queries) == 0 {
		b.Skip("no study queries")
	}
	var points []sim.FaultPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = sim.FaultTolerance(c, 10, queries, []float64{0, 0.1, 0.3}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(points) == 3 {
		sim.RenderFaultStudy(benchOut(), 10, points)
		b.ReportMetric(100*points[2].HyperRecall, "hyper-recall-pct-30pct-failed")
		b.ReportMetric(100*points[2].DIIBlocked, "dii-blocked-pct-30pct-failed")
	}
}
