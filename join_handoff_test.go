package keysearch

import (
	"context"
	"strconv"
	"testing"
)

// TestJoinHandsOffIndexEntries: a node joining AFTER objects were
// published takes over the index entries in its new key range, so
// searches keep finding everything through the changed topology.
func TestJoinHandsOffIndexEntries(t *testing.T) {
	c := newCluster(t, 3, Config{Dim: 8})
	ctx := context.Background()

	const n = 60
	for i := 0; i < n; i++ {
		id := "pre-" + strconv.Itoa(i)
		obj := Object{ID: id, Keywords: NewKeywordSet("prejoin", "t"+strconv.Itoa(i))}
		if err := c.Peers[0].Publish(ctx, obj, "/"+id); err != nil {
			t.Fatal(err)
		}
	}

	// Several new peers join after the fact.
	for j := 0; j < 4; j++ {
		peer, err := NewPeer(c.Network(), Addr("late-"+strconv.Itoa(j)), Config{
			Dim:                 8,
			MaintenanceInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := peer.Join(ctx, c.Peers[0].Addr()); err != nil {
			t.Fatalf("join %d: %v", j, err)
		}
		c.Peers = append(c.Peers, peer)
		c.Heal(ctx)
	}

	// Some joiners should actually have received entries.
	migrated := 0
	for _, p := range c.Peers[3:] {
		migrated += p.IndexStats().Objects
	}
	if migrated == 0 {
		t.Error("no index entries migrated to joining peers")
	}

	// Everything remains findable from every peer.
	for _, p := range []*Peer{c.Peers[0], c.Peers[len(c.Peers)-1]} {
		res, err := p.Search(ctx, NewKeywordSet("prejoin"), All, SearchOptions{NoCache: true})
		if err != nil {
			t.Fatalf("search via %s: %v", p.Addr(), err)
		}
		if len(res.Matches) != n {
			t.Fatalf("search via %s found %d/%d after joins", p.Addr(), len(res.Matches), n)
		}
	}
	// Pin searches route to the new owners too.
	for i := 0; i < n; i += 9 {
		k := NewKeywordSet("prejoin", "t"+strconv.Itoa(i))
		ids, _, err := c.Peers[1].PinSearch(ctx, k)
		if err != nil || len(ids) != 1 {
			t.Fatalf("pin %v after joins = %v, %v", k, ids, err)
		}
	}
}
