package keysearch

import (
	"context"
	"fmt"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// Cluster is a set of peers sharing one network — the unit the
// examples and tests build. For in-memory clusters the whole network
// lives in one process; over TCP each peer would normally be its own
// process (see cmd/ksnode), but Cluster works there too.
type Cluster struct {
	Peers []*Peer
	net   *inmem.Network
}

// NewLocalCluster builds an n-peer in-memory cluster with a converged
// DHT ring, ready for Publish/Search. Background maintenance is
// disabled; the ring is converged synchronously so behaviour is
// deterministic.
func NewLocalCluster(n int, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("keysearch: cluster needs at least one peer, got %d", n)
	}
	cfg.MaintenanceInterval = -1 // synchronous maintenance only
	net := NewInMemoryTransport(1)
	c := &Cluster{net: net, Peers: make([]*Peer, 0, n)}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		peer, err := NewPeer(net, Addr("peer-"+strconv.Itoa(i)), cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("peer %d: %w", i, err)
		}
		if i == 0 {
			peer.Create()
		} else if err := peer.Join(ctx, c.Peers[0].Addr()); err != nil {
			c.Close()
			return nil, fmt.Errorf("join peer %d: %w", i, err)
		}
		c.Peers = append(c.Peers, peer)
		c.converge(ctx)
	}
	return c, nil
}

// converge drives synchronous stabilization until pointers settle,
// then drains the index migrations the pointer changes triggered, so a
// converged cluster has no open double-read windows and behaves
// deterministically.
func (c *Cluster) converge(ctx context.Context) {
	for round := 0; round < 3*len(c.Peers)+3; round++ {
		for _, p := range c.Peers {
			_ = p.StabilizeOnce(ctx)
		}
	}
	for _, p := range c.Peers {
		_ = p.WaitMigrationsIdle(ctx)
	}
}

// Heal re-runs synchronous stabilization, e.g. after failing peers.
func (c *Cluster) Heal(ctx context.Context) { c.converge(ctx) }

// Network exposes the underlying in-memory network for fault
// injection in tests.
func (c *Cluster) Network() *inmem.Network { return c.net }

// Close shuts down every peer and the network.
func (c *Cluster) Close() {
	for _, p := range c.Peers {
		_ = p.Close()
	}
	if c.net != nil {
		_ = c.net.Close()
	}
}
