// Command ksgen generates the synthetic website-directory corpus and
// query log standing in for the paper's PCHome dataset, either as a
// Table 1-style sample or as TSV streams for external tooling.
//
// Examples:
//
//	ksgen -sample                 # print a few records like Table 1
//	ksgen -records -objects 1000  # TSV of 1000 records
//	ksgen -querylog -queries 500  # TSV query log
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/p2pkeyword/keysearch/internal/corpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ksgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ksgen", flag.ContinueOnError)
	var (
		sample    = fs.Bool("sample", false, "print a Table 1-style sample of records")
		records   = fs.Bool("records", false, "stream all records as TSV")
		querylog  = fs.Bool("querylog", false, "stream a replayable query log as TSV (ksload -log format)")
		objects   = fs.Int("objects", corpus.DefaultObjects, "corpus size")
		queries   = fs.Int("queries", 178000, "query log length")
		templates = fs.Int("templates", 2000, "distinct query templates")
		seed      = fs.Int64("seed", 1, "generation seed")
		out       = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*sample && !*records && !*querylog {
		*sample = true
	}

	c, err := corpus.Generate(corpus.Config{Objects: *objects, Seed: *seed})
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := bufio.NewWriter(dst)
	defer w.Flush()

	if *sample {
		fmt.Fprintf(w, "%-8s %-12s %-32s %-12s %s\n", "ID", "Title", "URL", "Category", "Keyword")
		for _, rec := range c.Records()[:min(5, c.Len())] {
			fmt.Fprintf(w, "%-8s %-12s %-32s %-12s %s\n",
				rec.ID, rec.Title, rec.URL, rec.Category, strings.Join(rec.Keywords.Words(), ", "))
		}
		fmt.Fprintf(w, "\n%d records, mean %.2f keywords/object\n", c.Len(), c.MeanKeywords())
	}
	if *records {
		for _, rec := range c.Records() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
				rec.ID, rec.Title, rec.URL, rec.Category, rec.Description,
				strings.Join(rec.Keywords.Words(), ","))
		}
	}
	if *querylog {
		log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries: *queries, Templates: *templates, Seed: *seed + 1,
		})
		if err != nil {
			return err
		}
		// The canonical replay format (corpus.WriteTSV): deterministic
		// per seed, parseable back by corpus.ReadQueryLogTSV and ksload.
		if err := log.WriteTSV(w); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
