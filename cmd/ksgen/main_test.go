package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestRunSampleDefault(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-objects", "500"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"ID", "Title", "URL", "Keyword", "500 records"} {
		if !strings.Contains(out, want) {
			t.Errorf("sample output missing %q", want)
		}
	}
}

func TestRunRecordsTSV(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-records", "-objects", "50"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 50 {
		t.Fatalf("records = %d, want 50", len(lines))
	}
	if fields := strings.Split(lines[0], "\t"); len(fields) != 6 {
		t.Errorf("record has %d fields, want 6", len(fields))
	}
}

func TestRunQueryLogTSV(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-querylog", "-objects", "2000", "-queries", "100", "-templates", "30"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 100 {
		t.Fatalf("queries = %d, want 100", len(lines))
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
