// Command ksbench regenerates every table and figure of the paper's
// evaluation (Section 4) against the synthetic PCHome-substitute
// workload, printing the same series the paper plots.
//
// Examples:
//
//	ksbench -fig 5                  # keyword-set-size distribution
//	ksbench -fig 6                  # load distribution, r = 6..16 + DII
//	ksbench -fig 7                  # object vs node distributions
//	ksbench -fig 8                  # cacheless query performance
//	ksbench -fig 9                  # query performance with cache
//	ksbench -fig eq1                # Equation (1) check
//	ksbench -fig costs              # Section 3.5 operation costs
//	ksbench -fig prefix             # prefix multicast vs fan-out costs
//	ksbench -fig all -objects 20000 # everything, smaller corpus
//
// The full paper-scale corpus (131,180 objects, 178,000 queries) is
// the default; use -objects and -queries to scale down for quick runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	keysearch "github.com/p2pkeyword/keysearch"
	"github.com/p2pkeyword/keysearch/internal/analytic"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/sim"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ksbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ksbench", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, eq1, costs, ft, hotspot, batch, churn, prefix, or all")
		objects   = fs.Int("objects", corpus.DefaultObjects, "corpus size (paper: 131180)")
		queries   = fs.Int("queries", 178000, "query-log length for fig 9 (paper: ~178000/day)")
		templates = fs.Int("templates", 2000, "distinct query templates")
		seed      = fs.Int64("seed", 1, "workload seed")
		fig8R     = fs.String("fig8-r", "8,10,12", "dimensions for figure 8")
		fig8Q     = fs.Int("fig8-queries", 10, "sampled popular queries per (r, m)")
		fig9R     = fs.String("fig9-r", "10,12", "dimensions for figure 9")
		fig9Max   = fs.Int("fig9-max", 0, "cap on replayed queries (0 = full log)")
		fig9Res   = fs.Int("fig9-maxresults", 20, "result-size cap for fig 9 query templates (see EXPERIMENTS.md)")
		telem     = fs.Bool("telemetry", false, "instrument the simulated deployments and print a JSON registry snapshot after the run")
		batchOn   = fs.Bool("batch-waves", true, "coalesce parallel search waves into one RPC frame per distinct peer in the simulated deployments")
		batchN    = fs.Int("batch-peers", 64, "physical fleet size for the 'batch' study")
		shards    = fs.Int("shards", 0, "index-table lock stripes per simulated server (0 = GOMAXPROCS rounded to a power of two, 1 = single lock)")
		scanPar   = fs.Int("scan-parallelism", 0, "worker pool for batched sub-query scans per server (0 = GOMAXPROCS, 1 = sequential)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ksbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ksbench: memprofile:", err)
			}
		}()
	}
	tune := serverTuning{shards: *shards, scanPar: *scanPar}
	var reg *telemetry.Registry
	if *telem {
		reg = telemetry.New(256)
	}

	fmt.Fprintf(os.Stderr, "generating corpus (%d objects)...\n", *objects)
	c, err := corpus.Generate(corpus.Config{Objects: *objects, Seed: *seed})
	if err != nil {
		return err
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	out := os.Stdout

	if want("5") {
		sim.RenderFig5(out, sim.Fig5(c))
		fmt.Fprintln(out)
	}
	if want("6") {
		if err := runFig6(out, c); err != nil {
			return err
		}
	}
	if want("7") {
		for _, r := range []int{6, 8, 10, 12, 13, 14, 15, 16} {
			res, err := sim.Fig7(c, r)
			if err != nil {
				return err
			}
			sim.RenderFig7(out, res)
			fmt.Fprintln(out)
		}
		if err := renderChooseDimension(out, c); err != nil {
			return err
		}
	}
	if want("eq1") {
		renderEq1(out)
	}

	if want("8") {
		fmt.Fprintf(os.Stderr, "generating fig8 query log (%d queries, %d templates)...\n", *queries, *templates)
		log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries:   *queries,
			Templates: *templates,
			Seed:      *seed + 1,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fig8 query log: top-10 templates account for %.1f%% of volume (paper: >60%%)\n\n",
			100*log.TopShare(10))
		if err := runFig8(out, c, log, parseInts(*fig8R), *fig8Q, reg, batchMode(*batchOn), tune); err != nil {
			return err
		}
	}
	if want("9") {
		fmt.Fprintf(os.Stderr, "generating fig9 query log (%d queries, %d templates, results ≤ %d)...\n",
			*queries, *templates, *fig9Res)
		log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries:            *queries,
			Templates:          *templates,
			Seed:               *seed + 1,
			MaxTemplateResults: *fig9Res,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fig9 query log: top-10 templates account for %.1f%% of volume (paper: >60%%)\n\n",
			100*log.TopShare(10))
		if err := runFig9(out, c, log, parseInts(*fig9R), *fig9Max, reg); err != nil {
			return err
		}
	}
	if want("costs") {
		if err := runCosts(out, c, reg, batchMode(*batchOn), tune); err != nil {
			return err
		}
	}
	if want("batch") {
		log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries: *queries, Templates: *templates, Seed: *seed + 1,
		})
		if err != nil {
			return err
		}
		if err := runBatchStudy(out, c, log, *batchN); err != nil {
			return err
		}
	}
	if want("ft") {
		if err := runFaultStudy(out, c, *seed); err != nil {
			return err
		}
	}
	if want("prefix") {
		if err := runPrefixStudy(out, c); err != nil {
			return err
		}
	}
	if want("churn") {
		if err := runChurnStudy(out, c, *seed); err != nil {
			return err
		}
	}
	if want("hotspot") {
		log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries: *queries, Templates: *templates, Seed: *seed + 1,
		})
		if err != nil {
			return err
		}
		res, err := sim.HotSpots(log, 10)
		if err != nil {
			return err
		}
		sim.RenderHotSpots(out, res)
		fmt.Fprintln(out)
	}
	if reg != nil {
		fmt.Fprintln(out, "telemetry snapshot:")
		if err := reg.WriteJSON(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runFaultStudy regenerates the fault-tolerance comparison implied by
// Sections 1 and 3.4: graceful hypercube degradation versus DII
// query blocking under crash-stop failures.
func runFaultStudy(out *os.File, c *corpus.Corpus, seed int64) error {
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 2000, Templates: 300, Seed: seed + 2,
	})
	if err != nil {
		return err
	}
	queries := sim.FaultStudyQueries(log, 10)
	fmt.Fprintf(os.Stderr, "fault study: %d queries over 2^10 nodes...\n", len(queries))
	points, err := sim.FaultTolerance(c, 10, queries, []float64{0, 0.05, 0.1, 0.2, 0.3}, seed)
	if err != nil {
		return err
	}
	sim.RenderFaultStudy(out, 10, points)
	fmt.Fprintln(out)
	return nil
}

// runChurnStudy measures live-churn correctness end to end at peer
// level: a fleet under seed-generated joins and graceful leaves — with
// chunked, throttled index migrations keeping double-read windows open
// across query boundaries — must answer the query run byte-identically
// (fingerprint-equal) to a static fleet that never churned, and the
// final sweep after healing must find every published entry.
func runChurnStudy(out *os.File, c *corpus.Corpus, seed int64) error {
	const (
		basePeers = 8
		subset    = 150
		nJoins    = 4
		nLeaves   = 3
	)
	recs := c.Records()
	if len(recs) > subset {
		recs = recs[:subset]
	}
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries: 2000, Templates: 300, Seed: seed + 3,
	})
	if err != nil {
		return err
	}
	queries := sim.FaultStudyQueries(log, 5)
	if len(queries) < 2 {
		return fmt.Errorf("churn study: query log yielded %d queries", len(queries))
	}
	// The sweep keyword is the subset's most frequent one, so the final
	// query proves zero entries were lost across every transfer.
	freq := map[string]int{}
	for _, r := range recs {
		for _, w := range r.Keywords.Words() {
			freq[w]++
		}
	}
	sweep, sweepN := "", 0
	for w, n := range freq {
		if n > sweepN || (n == sweepN && w < sweep) {
			sweep, sweepN = w, n
		}
	}

	leavable := make([]keysearch.Addr, 0, basePeers-2)
	for i := 1; i <= basePeers-2; i++ {
		leavable = append(leavable, keysearch.Addr("peer-"+strconv.Itoa(i)))
	}
	sched, err := sim.GenerateChurn(seed, sim.ChurnConfig{
		Queries: len(queries), Joins: nJoins, Leaves: nLeaves, Leavable: leavable,
	})
	if err != nil {
		return err
	}

	run := func(churn bool) (fp string, outcomes []sim.QueryOutcome, totals core.MigrationStats, finalFound int, err error) {
		ctx := context.Background()
		cfg := keysearch.Config{Dim: 10, MigrateChunkEntries: 4, MigrateThrottle: 10 * time.Millisecond}
		cl, err := keysearch.NewLocalCluster(basePeers, cfg)
		if err != nil {
			return "", nil, totals, 0, err
		}
		defer cl.Close()
		for _, r := range recs {
			obj := keysearch.Object{ID: r.ID, Keywords: r.Keywords}
			if err := cl.Peers[0].Publish(ctx, obj, "corpus://"+r.ID); err != nil {
				return "", nil, totals, 0, fmt.Errorf("churn study publish %s: %w", r.ID, err)
			}
		}
		live := append([]*keysearch.Peer(nil), cl.Peers...)
		tally := func(p *keysearch.Peer) {
			st := p.MigrationStats()
			totals.Chunks += st.Chunks
			totals.Entries += st.Entries
			totals.Bytes += st.Bytes
			totals.Resumes += st.Resumes
			totals.DoubleReads += st.DoubleReads
			totals.Commits += st.Commits
			totals.Failures += st.Failures
		}
		stabilize := func(rounds int) {
			for r := 0; r < rounds; r++ {
				for _, p := range live {
					_ = p.StabilizeOnce(ctx)
				}
			}
		}
		quiesce := func() error {
			qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			for _, p := range live {
				if err := p.WaitMigrationsIdle(qctx); err != nil {
					return fmt.Errorf("churn study quiesce: %w", err)
				}
			}
			return nil
		}
		joinCfg := cfg
		joinCfg.MaintenanceInterval = -1
		apply := func(ev sim.FaultEvent) error {
			switch ev.Kind {
			case sim.FaultJoin:
				p, err := keysearch.NewPeer(cl.Network(), ev.Node, joinCfg)
				if err != nil {
					return err
				}
				if err := p.Join(ctx, cl.Peers[0].Addr()); err != nil {
					return err
				}
				live = append(live, p)
				cl.Peers = append(cl.Peers, p)
				stabilize(4)
			case sim.FaultLeave:
				if err := quiesce(); err != nil {
					return err
				}
				for i, p := range live {
					if p.Addr() != ev.Node {
						continue
					}
					tally(p)
					if _, err := p.Leave(ctx); err != nil {
						return fmt.Errorf("leave %s: %w", ev.Node, err)
					}
					live = append(live[:i], live[i+1:]...)
					break
				}
				// A departure leaves stale fingers behind; repair is
				// incremental, so converge fully — searches across a
				// half-repaired ring fail subtrees, which is a chord
				// routing artifact, not a migration one.
				stabilize(3*len(live) + 3)
			}
			return nil
		}

		outs := make([]sim.QueryOutcome, 0, len(queries)+1)
		record := func(q keyword.Set) int {
			res, err := live[0].Search(ctx, q, core.All, core.SearchOptions{NoCache: true})
			out := sim.QueryOutcome{QueryKey: q.Key(), Completeness: 1}
			if err != nil {
				out.Err = err.Error()
				out.Completeness = 0
			} else {
				out.Completeness = res.Completeness
				out.FailedSubtrees = res.FailedSubtrees
				for _, m := range res.Matches {
					out.ObjectIDs = append(out.ObjectIDs, m.ObjectID)
				}
			}
			outs = append(outs, out)
			return len(out.ObjectIDs)
		}
		ei := 0
		for qi, q := range queries {
			if churn {
				for ei < len(sched.Events) && sched.Events[ei].AtQuery <= qi {
					if err := apply(sched.Events[ei]); err != nil {
						return "", nil, totals, 0, err
					}
					ei++
				}
			}
			record(q)
		}
		if err := quiesce(); err != nil {
			return "", nil, totals, 0, err
		}
		stabilize(3*len(live) + 3)
		if err := quiesce(); err != nil {
			return "", nil, totals, 0, err
		}
		finalFound = record(keyword.NewSet(sweep))
		for _, p := range live {
			tally(p)
		}
		rep := sim.ChaosReport{Outcomes: outs}
		return rep.Fingerprint(), outs, totals, finalFound, nil
	}

	fmt.Fprintf(os.Stderr, "churn study: %d base peers, +%d joins, -%d leaves over %d queries...\n",
		basePeers, nJoins, nLeaves, len(queries))
	staticFP, staticOuts, _, staticFound, err := run(false)
	if err != nil {
		return err
	}
	churnFP, churnOuts, totals, churnFound, err := run(true)
	if err != nil {
		return err
	}
	if staticFP != churnFP {
		for i := range staticOuts {
			if i < len(churnOuts) && !reflect.DeepEqual(staticOuts[i], churnOuts[i]) {
				fmt.Fprintf(os.Stderr, "diverged at query %d (%s):\n  static  %+v\n  churned %+v\n",
					i, staticOuts[i].QueryKey, staticOuts[i], churnOuts[i])
			}
		}
	}

	fmt.Fprintf(out, "live churn study (seed %d): %d base peers, +%d joins, -%d graceful leaves, %d queries, %d-object subset\n",
		seed, basePeers, nJoins, nLeaves, len(queries), len(recs))
	fmt.Fprintf(out, "  static  fleet fingerprint: %s\n", staticFP)
	fmt.Fprintf(out, "  churned fleet fingerprint: %s\n", churnFP)
	verdict := "MATCH — answers byte-identical under churn"
	if staticFP != churnFP {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(out, "  verdict: %s\n", verdict)
	fmt.Fprintf(out, "  migration under churn: %d commits, %d chunks, %d entries, %d bytes, %d double-reads, %d resumes, %d failures\n",
		totals.Commits, totals.Chunks, totals.Entries, totals.Bytes,
		totals.DoubleReads, totals.Resumes, totals.Failures)
	fmt.Fprintf(out, "  final sweep %q: %d objects (static fleet: %d, subset frequency: %d)\n\n",
		sweep, churnFound, staticFound, sweepN)
	if staticFP != churnFP {
		return fmt.Errorf("churn study: fingerprints diverged")
	}
	if churnFound != staticFound || churnFound != sweepN {
		return fmt.Errorf("churn study: final sweep found %d objects, static %d, want %d", churnFound, staticFound, sweepN)
	}
	return nil
}

// runPrefixStudy records the prefix-multicast cost comparison: the
// exclusion-mask multicast versus the naive per-dimension fan-out
// (the Figure 6 DII-style per-keyword-index cost model), on the most
// frequent 3- and 2-character keyword prefixes of the corpus.
func runPrefixStudy(out *os.File, c *corpus.Corpus) error {
	prefixes := sim.PrefixStudyPrefixes(c, 3, 8)
	prefixes = append(prefixes, sim.PrefixStudyPrefixes(c, 2, 4)...)
	seen := map[string]bool{}
	deduped := prefixes[:0]
	for _, p := range prefixes {
		if !seen[p] {
			seen[p] = true
			deduped = append(deduped, p)
		}
	}
	fmt.Fprintf(os.Stderr, "prefix study: %d prefixes over 2^10 nodes (multicast vs per-dimension fan-out)...\n",
		len(deduped))
	res, err := sim.PrefixStudy(c, deduped, 10)
	if err != nil {
		return err
	}
	sim.RenderPrefixStudy(out, res)
	fmt.Fprintln(out)
	for _, p := range res.Points {
		if !p.Identical {
			return fmt.Errorf("prefix study: %q answer sets diverge between strategies", p.Prefix)
		}
	}
	return nil
}

func runFig6(out *os.File, c *corpus.Corpus) error {
	var curves []sim.LoadCurve
	for _, r := range []int{6, 8, 10, 12, 14, 16} {
		for _, scheme := range []sim.LoadScheme{sim.SchemeHypercube, sim.SchemeDHT} {
			lc, err := sim.Fig6Load(c, scheme, r)
			if err != nil {
				return err
			}
			curves = append(curves, lc)
		}
	}
	for _, r := range []int{10, 12, 14} {
		lc, err := sim.Fig6Load(c, sim.SchemeDII, r)
		if err != nil {
			return err
		}
		curves = append(curves, lc)
	}
	sim.RenderFig6(out, curves, []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75})
	fmt.Fprintln(out)
	return nil
}

func renderChooseDimension(out *os.File, c *corpus.Corpus) error {
	r, err := analytic.ChooseDimension(c.SizePMF(), 6, 16)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "analytic dimension choice from the Fig.5 histogram: r = %d (paper's empirical optimum: 10)\n\n", r)
	return nil
}

func renderEq1(out *os.File) {
	fmt.Fprintln(out, "Equation (1) — P(|One(F_h(K))| = j) and expectation")
	fmt.Fprintf(out, "%-10s %-6s", "r / m", "E[j]")
	for j := 1; j <= 8; j++ {
		fmt.Fprintf(out, " %7s", "j="+strconv.Itoa(j))
	}
	fmt.Fprintln(out)
	for _, rm := range [][2]int{{8, 3}, {10, 5}, {10, 7}, {12, 7}, {16, 7}} {
		r, m := rm[0], rm[1]
		e, _ := analytic.ExpectedOneBits(r, m)
		fmt.Fprintf(out, "%-10s %-6.2f", fmt.Sprintf("r=%d m=%d", r, m), e)
		for j := 1; j <= 8; j++ {
			p, _ := analytic.OneBitsPMF(r, m, j)
			fmt.Fprintf(out, " %7.4f", p)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
}

func runFig8(out *os.File, c *corpus.Corpus, log *corpus.QueryLog, rs []int, perM int, reg *telemetry.Registry, batch core.BatchMode, tune serverTuning) error {
	recalls := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	for _, r := range rs {
		fmt.Fprintf(os.Stderr, "fig8: deploying 2^%d index nodes and inserting corpus...\n", r)
		d, err := sim.NewCustomDeployment(sim.DeployConfig{
			R: r, Telemetry: reg, Batch: batch,
			Shards: tune.shards, ScanParallelism: tune.scanPar,
		})
		if err != nil {
			return err
		}
		if err := d.InsertCorpus(c); err != nil {
			d.Close()
			return err
		}
		var lines []sim.Fig8Line
		for m := 1; m <= 5; m++ {
			qs := log.PopularOfSize(m, perM)
			if len(qs) == 0 {
				continue
			}
			line, err := sim.Fig8(d, qs, recalls)
			if err != nil {
				d.Close()
				return err
			}
			lines = append(lines, line)
		}
		sim.RenderFig8(out, lines)
		fmt.Fprintln(out)
		d.Close()
	}
	return nil
}

func runFig9(out *os.File, c *corpus.Corpus, log *corpus.QueryLog, rs []int, maxQueries int, reg *telemetry.Registry) error {
	alphas := []float64{0, 1.0 / 48, 1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3}
	for _, r := range rs {
		for _, recall := range []float64{0.5, 1.0} {
			fmt.Fprintf(os.Stderr, "fig9: r=%d recall=%.0f%% replaying queries across %d cache sizes...\n",
				r, 100*recall, len(alphas))
			points, err := sim.Fig9Instrumented(c, log, r, alphas, recall, maxQueries, reg)
			if err != nil {
				return err
			}
			sim.RenderFig9(out, r, recall, points)
			fmt.Fprintln(out)
		}
	}
	return nil
}

// serverTuning carries the -shards/-scan-parallelism knobs into the
// simulated deployments (0 = library defaults).
type serverTuning struct {
	shards  int
	scanPar int
}

// batchMode maps the -batch-waves flag onto the core knob.
func batchMode(on bool) core.BatchMode {
	if on {
		return core.BatchOn
	}
	return core.BatchOff
}

// runBatchStudy measures physical-frame savings of wave batching on a
// folded deployment: 2^10 logical vertices on a peers-node fleet.
func runBatchStudy(out *os.File, c *corpus.Corpus, log *corpus.QueryLog, peers int) error {
	var queries []keyword.Set
	for m := 1; m <= 3; m++ {
		queries = append(queries, log.PopularOfSize(m, 3)...)
	}
	fmt.Fprintf(os.Stderr, "batch study: %d queries over 2^10 vertices on %d peers (batched vs unbatched)...\n",
		len(queries), peers)
	res, err := sim.BatchStudy(c, queries, 10, peers, 0)
	if err != nil {
		return err
	}
	sim.RenderBatchStudy(out, res)
	fmt.Fprintln(out)
	return nil
}

func runCosts(out *os.File, c *corpus.Corpus, reg *telemetry.Registry, batch core.BatchMode, tune serverTuning) error {
	d, err := sim.NewCustomDeployment(sim.DeployConfig{
		R: 10, Telemetry: reg, Batch: batch,
		Shards: tune.shards, ScanParallelism: tune.scanPar,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	costs, err := sim.OpCosts(d, c, 200)
	if err != nil {
		return err
	}
	sim.RenderOpCosts(out, costs)
	fmt.Fprintln(out)
	return nil
}

func parseInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, err := strconv.Atoi(part); err == nil {
			out = append(out, v)
		}
	}
	return out
}
