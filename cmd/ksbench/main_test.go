package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunFig5Small(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "5", "-objects", "2000"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "mean") {
		t.Errorf("missing figure 5 table:\n%s", out)
	}
}

func TestRunFig6Small(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "6", "-objects", "3000"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 6", "hypercube-10", "DII-12", "DHT-8", "Gini"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 6 output missing %q", want)
		}
	}
}

func TestRunFig7Small(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "7", "-objects", "3000"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 7 (r=10)") || !strings.Contains(out, "analytic dimension choice") {
		t.Errorf("figure 7 output incomplete")
	}
}

func TestRunEq1(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "eq1", "-objects", "100"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Equation (1)") {
		t.Error("missing Eq 1 table")
	}
}

func TestRunCostsSmall(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "costs", "-objects", "300"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Section 3.5", "insert", "pin-search", "delete"} {
		if !strings.Contains(out, want) {
			t.Errorf("costs output missing %q", want)
		}
	}
}

func TestRunFig8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment-heavy")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "8", "-objects", "3000", "-queries", "500",
			"-templates", "100", "-fig8-r", "8", "-fig8-queries", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 8") {
		t.Error("missing figure 8 table")
	}
}

func TestRunFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment-heavy")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "9", "-objects", "3000", "-queries", "2000",
			"-templates", "50", "-fig9-r", "8", "-fig9-max", "2000"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "hit rate") {
		t.Error("missing figure 9 table")
	}
}

func TestParseInts(t *testing.T) {
	got := parseInts("8, 10,12,,x")
	if len(got) != 3 || got[0] != 8 || got[1] != 10 || got[2] != 12 {
		t.Errorf("parseInts = %v", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
