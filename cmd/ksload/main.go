// Command ksload is the open-loop load rig: it replays a seeded Zipf
// query log against a keysearch fleet at a configured arrival rate —
// the way a large population of independent users would, without the
// coordinated-omission bias of closed-loop drivers — and records SLO
// accounting (goodput, shed rate, intended-start latency quantiles)
// as a machine-readable BENCH_<tag>.json under -out.
//
// Examples:
//
//	ksload -rate 2000 -duration 5s                  # one run, inmem fleet
//	ksload -transport tcp -peers 4 -rate 500        # over real sockets
//	ksload -study -tag pr6_baseline                 # the overload study
//	ksload -log queries.tsv -rate 1000              # replay a ksgen export
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/load"
	"github.com/p2pkeyword/keysearch/internal/sim"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ksload:", err)
		os.Exit(1)
	}
}

type options struct {
	transport     string
	wire          string
	listenWorkers int
	r             int
	peers         int

	objects    int
	corpusSeed int64
	queries    int
	templates  int
	querySeed  int64
	logPath    string

	rate       float64
	duration   time.Duration
	arrival    string
	seed       int64
	timeout    time.Duration
	clients    int
	thresh     int
	prefixFrac float64
	prefixLen  int

	// prefixEvery is derived from prefixFrac: every Nth request is
	// issued as a prefix multicast instead of a superset search (0 =
	// superset-only).
	prefixEvery int

	admissionOn  bool
	maxInflight  int
	maxQueue     int
	queueTimeout time.Duration
	clientRate   float64
	clientBurst  float64

	cacheUnits  int
	cachePolicy string
	cacheTarget float64
	hotReplicas int
	hotThresh   int
	hotSpread   bool

	study     bool
	zipfStudy bool
	tag       string
	out       string

	// wireResolved is the wire mode of the fleet being built now: with
	// -wire both it alternates per phase, otherwise it equals wire.
	wireResolved string
}

func run(args []string) error {
	fs := flag.NewFlagSet("ksload", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.transport, "transport", "inmem", "fleet transport: inmem or tcp")
	fs.StringVar(&o.wire, "wire", "binary", "tcp wire protocol: binary | gob | both (both runs one phase per protocol into the same BENCH file)")
	fs.IntVar(&o.listenWorkers, "listen-workers", 0, "tcp: decode/handler workers shared by all v2 connections per peer (0 = 2x GOMAXPROCS, min 4)")
	fs.IntVar(&o.r, "r", 8, "hypercube dimensionality")
	fs.IntVar(&o.peers, "peers", 16, "physical fleet size")
	fs.IntVar(&o.objects, "objects", 2000, "corpus size")
	fs.Int64Var(&o.corpusSeed, "corpus-seed", 1, "corpus generation seed")
	fs.IntVar(&o.queries, "queries", 5000, "generated query-log length")
	fs.IntVar(&o.templates, "templates", 200, "distinct query templates")
	fs.Int64Var(&o.querySeed, "query-seed", 2, "query-log generation seed")
	fs.StringVar(&o.logPath, "log", "", "replay this ksgen -querylog TSV export instead of generating")
	fs.Float64Var(&o.rate, "rate", 1000, "offered arrival rate, requests/second")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "offered-load window")
	fs.StringVar(&o.arrival, "arrival", load.ArrivalPoisson, "arrival process: poisson or fixed")
	fs.Int64Var(&o.seed, "seed", 3, "arrival-schedule seed")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Second, "per-request deadline (0 = none)")
	fs.IntVar(&o.clients, "clients", 64, "distinct client identities the load is spread across")
	fs.IntVar(&o.thresh, "threshold", 10, "search threshold (matches requested per query)")
	fs.Float64Var(&o.prefixFrac, "prefix-frac", 0, "fraction of requests issued as prefix multicasts, derived from the query's first keyword (0 = superset-only)")
	fs.IntVar(&o.prefixLen, "prefix-len", 3, "prefix length for -prefix-frac queries")
	fs.BoolVar(&o.admissionOn, "admission", true, "enable server-side admission control")
	fs.IntVar(&o.maxInflight, "max-inflight", 64, "admission: concurrent client-facing requests per peer")
	fs.IntVar(&o.maxQueue, "max-queue", 64, "admission: bounded wait queue per peer (-1 = none)")
	fs.DurationVar(&o.queueTimeout, "queue-timeout", 50*time.Millisecond, "admission: max queue wait")
	fs.Float64Var(&o.clientRate, "client-rate", 0, "admission: per-client token rate, req/s (0 = no fair queuing)")
	fs.Float64Var(&o.clientBurst, "client-burst", 0, "admission: per-client burst (0 = rate/4)")
	fs.IntVar(&o.cacheUnits, "cache", 0, "per-peer result-cache capacity in object-ID units (0 = cache off, replay with NoCache)")
	fs.StringVar(&o.cachePolicy, "cache-policy", "hot", "result-cache policy when -cache > 0: hot (popularity) or fifo")
	fs.Float64Var(&o.cacheTarget, "cache-target-hit", 0, "hot cache: auto-tune capacity toward this hit ratio (0 = fixed capacity)")
	fs.IntVar(&o.hotReplicas, "hot-replicas", 0, "soft replicas per promoted hot root (0 = soft replication off)")
	fs.IntVar(&o.hotThresh, "hot-threshold", 0, "fresh-query count before a root is promoted (0 = default)")
	fs.BoolVar(&o.hotSpread, "hot-spread", false, "clients rotate repeated queries across a hot root's soft replicas")
	fs.BoolVar(&o.study, "study", false, "run the overload study (capacity probe + 0.5x/2x phases) instead of one run")
	fs.BoolVar(&o.zipfStudy, "zipf-study", false, "run the Zipf hotspot-storm study: cache-off vs hot-vertex layer at equal offered load (rate derived from a capacity probe; -rate is ignored)")
	fs.StringVar(&o.tag, "tag", "run", "BENCH file tag: results/BENCH_<tag>.json")
	fs.StringVar(&o.out, "out", "results", "output directory for BENCH files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.transport != "inmem" && o.transport != "tcp" {
		return fmt.Errorf("unknown transport %q", o.transport)
	}
	if o.prefixFrac < 0 || o.prefixFrac > 1 {
		return fmt.Errorf("-prefix-frac %v outside [0, 1]", o.prefixFrac)
	}
	if o.prefixFrac > 0 {
		if o.prefixLen < 1 {
			return fmt.Errorf("-prefix-len %d must be positive", o.prefixLen)
		}
		o.prefixEvery = int(math.Round(1 / o.prefixFrac))
		if o.prefixEvery < 1 {
			o.prefixEvery = 1
		}
	}
	switch o.wire {
	case "binary", "gob":
	case "both":
		if o.transport != "tcp" {
			return fmt.Errorf("-wire both requires -transport tcp")
		}
		if o.study {
			return fmt.Errorf("-wire both and -study are mutually exclusive")
		}
	default:
		return fmt.Errorf("unknown wire mode %q", o.wire)
	}

	c, err := corpus.Generate(corpus.Config{Objects: o.objects, Seed: o.corpusSeed})
	if err != nil {
		return err
	}
	var queries []corpus.Query
	if o.logPath != "" {
		f, err := os.Open(o.logPath)
		if err != nil {
			return err
		}
		queries, err = corpus.ReadQueryLogTSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		qlog, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
			Queries: o.queries, Templates: o.templates, Seed: o.querySeed,
		})
		if err != nil {
			return err
		}
		queries = qlog.Queries()
	}

	bench := load.NewBench(o.tag, load.Workload{
		Transport:     o.transport,
		R:             o.r,
		Peers:         o.peers,
		CorpusObjects: o.objects,
		CorpusSeed:    o.corpusSeed,
		Queries:       len(queries),
		Templates:     o.templates,
		QuerySeed:     o.querySeed,
		Threshold:     o.thresh,
	})
	if o.prefixFrac > 0 {
		bench.Workload.PrefixFrac = o.prefixFrac
		bench.Workload.PrefixLen = o.prefixLen
	}

	if o.study && o.zipfStudy {
		return fmt.Errorf("-study and -zipf-study are mutually exclusive")
	}
	if o.study {
		if err := runStudy(&o, c, queries, bench); err != nil {
			return err
		}
	} else if o.zipfStudy {
		if err := runZipfStudy(&o, c, queries, bench); err != nil {
			return err
		}
	} else {
		// -wire both replays the identical workload once per wire
		// protocol, so one BENCH file carries the apples-to-apples
		// comparison.
		modes := []string{o.wire}
		if o.wire == "both" {
			modes = []string{"gob", "binary"}
		}
		for _, mode := range modes {
			o.wireResolved = mode
			name := "single"
			if o.wire == "both" {
				name = "wire-" + mode
			}
			f, err := buildFleet(&o, c, o.admissionOn)
			if err != nil {
				return err
			}
			rep, err := runPhase(&o, f, queries, o.rate)
			f.close()
			if err != nil {
				return err
			}
			printReport(name+" ("+o.tag+")", o.rate, rep)
			bench.Runs = append(bench.Runs, load.RunResult{
				Name: name, Admission: o.admissionOn, RateQPS: o.rate,
				Arrival: o.arrival, TimeoutNS: o.timeout.Nanoseconds(), Report: rep,
			})
		}
	}

	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return err
	}
	path := filepath.Join(o.out, "BENCH_"+o.tag+".json")
	if err := load.WriteBench(path, bench); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// fleet abstracts the system under test: an indexed deployment that
// answers one query per call, on either transport.
type fleet interface {
	do(ctx context.Context, q corpus.Query, clientID string) error
	close()
}

func (o *options) policy() *admission.Policy {
	return &admission.Policy{
		MaxInflight:    o.maxInflight,
		MaxQueue:       o.maxQueue,
		QueueTimeout:   o.queueTimeout,
		PerClientRate:  o.clientRate,
		PerClientBurst: o.clientBurst,
	}
}

func buildFleet(o *options, c *corpus.Corpus, admissionOn bool) (fleet, error) {
	var pol *admission.Policy
	if admissionOn {
		pol = o.policy()
	}
	switch o.transport {
	case "inmem":
		return newInmemFleet(o, c, pol)
	default:
		return newTCPFleet(o, c, pol)
	}
}

// prefixOf derives the prefix-multicast argument from a replayed
// query: its first keyword truncated to plen characters ("" when the
// query is empty, in which case the caller falls back to superset).
func prefixOf(q corpus.Query, plen int) string {
	words := q.Keywords.Words()
	if len(words) == 0 {
		return ""
	}
	w := words[0]
	if len(w) > plen {
		w = w[:plen]
	}
	return w
}

// prefixMixer deterministically picks which requests of an open-loop
// phase become prefix multicasts: every every-th one (0 = none).
type prefixMixer struct {
	every int
	plen  int
	n     atomic.Uint64
}

// pick returns the prefix to query, or "" for a superset search.
func (m *prefixMixer) pick(q corpus.Query) string {
	if m.every <= 0 || m.n.Add(1)%uint64(m.every) != 0 {
		return ""
	}
	return prefixOf(q, m.plen)
}

type inmemFleet struct {
	d      *sim.Deployment
	reg    *telemetry.Registry
	thresh int
	// cacheOn replays with the result cache consulted; off (the
	// default, and the PR 6 baseline behavior) sets NoCache on every
	// query.
	cacheOn bool
	mix     prefixMixer
}

func newInmemFleet(o *options, c *corpus.Corpus, pol *admission.Policy) (*inmemFleet, error) {
	reg := telemetry.New(0)
	d, err := sim.NewCustomDeployment(sim.DeployConfig{
		R: o.r, Peers: o.peers, Telemetry: reg, Admission: pol,
		CacheCapacity:       o.cacheUnits,
		CachePolicy:         o.cachePolicy,
		CacheTargetHit:      o.cacheTarget,
		HotReplicas:         o.hotReplicas,
		HotPromoteThreshold: o.hotThresh,
		HotSpread:           o.hotSpread,
	})
	if err != nil {
		return nil, err
	}
	if err := d.InsertCorpus(c); err != nil {
		d.Close()
		return nil, err
	}
	return &inmemFleet{
		d: d, reg: reg, thresh: o.thresh, cacheOn: o.cacheUnits > 0,
		mix: prefixMixer{every: o.prefixEvery, plen: o.prefixLen},
	}, nil
}

func (f *inmemFleet) do(ctx context.Context, q corpus.Query, clientID string) error {
	opts := core.SearchOptions{Order: core.ParallelLevels, NoCache: !f.cacheOn, ClientID: clientID}
	if p := f.mix.pick(q); p != "" {
		_, err := f.d.Client.PrefixSearch(ctx, p, f.thresh, opts)
		return err
	}
	_, err := f.d.Client.SupersetSearch(ctx, q.Keywords, f.thresh, opts)
	return err
}

func (f *inmemFleet) close() { f.d.Close() }

// runPhase replays the query log open-loop at rate, spreading requests
// across o.clients identities.
func runPhase(o *options, f fleet, queries []corpus.Query, rate float64) (load.Report, error) {
	var next atomic.Uint64
	return load.Run(context.Background(), load.Config{
		Rate:     rate,
		Duration: o.duration,
		Arrival:  o.arrival,
		Seed:     o.seed,
		Timeout:  o.timeout,
	}, queries, func(ctx context.Context, q corpus.Query) error {
		id := ""
		if o.clients > 0 {
			id = fmt.Sprintf("c%d", next.Add(1)%uint64(o.clients))
		}
		return f.do(ctx, q, id)
	})
}

// probeCapacity measures the fleet's closed-loop throughput: 2×NumCPU
// workers issuing back-to-back queries for a short window. The result
// anchors the study's "0.5×" and "2×" offered rates.
func probeCapacity(o *options, f fleet, queries []corpus.Query) float64 {
	const window = 2 * time.Second
	workers := 2 * runtime.GOMAXPROCS(0)
	var done atomic.Uint64
	ctx, cancel := context.WithTimeout(context.Background(), window)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ctx.Err() == nil; i += workers {
				if f.do(ctx, queries[i%len(queries)], "") == nil {
					done.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	return float64(done.Load()) / time.Since(start).Seconds()
}

// runStudy is the PR's recorded experiment: measure capacity, then
// offer 0.5× with admission on (the healthy baseline), 2× with
// admission on (the fleet must shed its way back to its capacity), and
// 2× with admission off (the collapse the controller prevents).
func runStudy(o *options, c *corpus.Corpus, queries []corpus.Query, bench *load.BenchFile) error {
	probe, err := buildFleet(o, c, true)
	if err != nil {
		return err
	}
	capacity := probeCapacity(o, probe, queries)
	probe.close()
	if capacity <= 0 {
		return fmt.Errorf("capacity probe measured no throughput")
	}
	bench.CapacityQPS = capacity
	fmt.Printf("capacity ≈ %.0f q/s (closed-loop probe)\n", capacity)

	type phase struct {
		name      string
		admission bool
		rate      float64
	}
	phases := []phase{
		{"0.5x-admission-on", true, 0.5 * capacity},
		{"2x-admission-on", true, 2 * capacity},
		{"2x-admission-off", false, 2 * capacity},
	}
	reports := make(map[string]load.Report, len(phases))
	for _, ph := range phases {
		f, err := buildFleet(o, c, ph.admission)
		if err != nil {
			return err
		}
		rep, err := runPhase(o, f, queries, ph.rate)
		f.close()
		if err != nil {
			return err
		}
		reports[ph.name] = rep
		printReport(ph.name, ph.rate, rep)
		bench.Runs = append(bench.Runs, load.RunResult{
			Name: ph.name, Admission: ph.admission, RateQPS: ph.rate,
			Arrival: o.arrival, TimeoutNS: o.timeout.Nanoseconds(), Report: rep,
		})
	}

	// The study's acceptance assertions.
	base, on, off := reports["0.5x-admission-on"], reports["2x-admission-on"], reports["2x-admission-off"]
	peak := base.GoodputQPS
	if off.GoodputQPS > peak {
		peak = off.GoodputQPS
	}
	pass := true
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict, pass = "FAIL", false
		}
		fmt.Printf("%s  %s\n", verdict, fmt.Sprintf(format, args...))
	}
	check(base.Latency.P99 > 0 && on.Latency.P99 <= 5*base.Latency.P99,
		"admitted p99 at 2x with admission on (%v) within 5x of 0.5x baseline (%v)",
		time.Duration(on.Latency.P99), time.Duration(base.Latency.P99))
	check(on.GoodputQPS >= 0.7*peak,
		"goodput at 2x with admission on (%.0f q/s) >= 70%% of peak (%.0f q/s)",
		on.GoodputQPS, peak)
	check(on.Shed > 0, "admission actually shed load at 2x (%d shed, Retry-After mean %v)",
		on.Shed, time.Duration(on.RetryAfterMeanNS))
	check(off.Latency.P99 > on.Latency.P99 || off.GoodputQPS < on.GoodputQPS,
		"admission off at 2x degrades (p99 %v vs %v, goodput %.0f vs %.0f q/s)",
		time.Duration(off.Latency.P99), time.Duration(on.Latency.P99), off.GoodputQPS, on.GoodputQPS)
	if !pass {
		return fmt.Errorf("overload study failed its acceptance assertions")
	}
	return nil
}

func printReport(name string, rate float64, r load.Report) {
	fmt.Printf("%-18s rate=%.0f offered=%d ok=%d shed=%d timeout=%d err=%d rigdrop=%d goodput=%.0f q/s shed=%.1f%% p50=%v p99=%v p999=%v\n",
		name, rate, r.Offered, r.OK, r.Shed, r.Timeouts, r.Errors, r.RigDropped,
		r.GoodputQPS, 100*r.ShedRate,
		time.Duration(r.Latency.P50), time.Duration(r.Latency.P99), time.Duration(r.Latency.P999))
}
