package main

import (
	"context"
	"fmt"
	"time"

	keysearch "github.com/p2pkeyword/keysearch"
	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/transport/tcpnet"
)

// tcpFleet runs o.peers full keysearch peers over real loopback
// sockets in this process: Chord ring, index handoff, the configured
// wire protocol — the whole production stack minus process isolation.
type tcpFleet struct {
	net     *tcpnet.Network
	peers   []*keysearch.Peer
	thresh  int
	cacheOn bool
	mix     prefixMixer
}

func newTCPFleet(o *options, c *corpus.Corpus, pol *admission.Policy) (*tcpFleet, error) {
	keysearch.RegisterTypes()
	mode := o.wireResolved
	if mode == "" {
		mode = o.wire
	}
	net, err := keysearch.NewTCPTransportConfig(keysearch.TCPConfig{
		Wire:          mode,
		ListenWorkers: o.listenWorkers,
	})
	if err != nil {
		return nil, err
	}
	cfg := keysearch.Config{
		Dim: o.r, MaintenanceInterval: -1, Admission: pol,
		CacheCapacity:       o.cacheUnits,
		CachePolicy:         o.cachePolicy,
		CacheTargetHit:      o.cacheTarget,
		HotReplicas:         o.hotReplicas,
		HotPromoteThreshold: o.hotThresh,
		HotSpread:           o.hotSpread,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	f := &tcpFleet{
		net: net, thresh: o.thresh, cacheOn: o.cacheUnits > 0,
		mix: prefixMixer{every: o.prefixEvery, plen: o.prefixLen},
	}
	for i := 0; i < o.peers; i++ {
		p, err := keysearch.NewPeer(net, "127.0.0.1:0", cfg)
		if err != nil {
			f.close()
			return nil, fmt.Errorf("peer %d: %w", i, err)
		}
		if i == 0 {
			p.Create()
		} else if err := p.Join(ctx, f.peers[0].Addr()); err != nil {
			p.Close()
			f.close()
			return nil, fmt.Errorf("join peer %d: %w", i, err)
		}
		f.peers = append(f.peers, p)
		for round := 0; round < 3*len(f.peers)+3; round++ {
			for _, q := range f.peers {
				_ = q.StabilizeOnce(ctx)
			}
		}
	}

	// Index the corpus round-robin across the fleet (anonymous client
	// identity, so indexing is never fair-queued).
	for i, rec := range c.Records() {
		obj := keysearch.Object{ID: rec.ID, Keywords: rec.Keywords}
		if err := f.peers[i%len(f.peers)].Publish(ctx, obj, "/"+rec.ID); err != nil {
			f.close()
			return nil, fmt.Errorf("publish %s: %w", rec.ID, err)
		}
	}
	return f, nil
}

func (f *tcpFleet) do(ctx context.Context, q corpus.Query, clientID string) error {
	opts := core.SearchOptions{Order: core.ParallelLevels, NoCache: !f.cacheOn, ClientID: clientID}
	if p := f.mix.pick(q); p != "" {
		_, err := f.peers[0].PrefixSearch(ctx, p, f.thresh, opts)
		return err
	}
	_, err := f.peers[0].Search(ctx, q.Keywords, f.thresh, opts)
	return err
}

func (f *tcpFleet) close() {
	for _, p := range f.peers {
		_ = p.Close()
	}
	_ = f.net.Close()
}
