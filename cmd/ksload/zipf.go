package main

import (
	"context"
	"fmt"
	"reflect"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/load"
	"github.com/p2pkeyword/keysearch/internal/sim"
)

// runZipfStudy is the hot-vertex layer's recorded experiment: the same
// Zipf-popular query log is offered open-loop at the same rate to a
// cache-off fleet (the PR 6 baseline behavior: every query replayed
// with NoCache) and to a fleet running the full hot-vertex layer
// (popularity cache, soft replication of promoted roots, client-side
// request spreading). The study records p99 latency and per-peer
// serving-load concentration (top-node share, Gini over ops-served
// deltas) for both phases, then serially verifies that every distinct
// query template gets byte-identical answers from the two fleets.
func runZipfStudy(o *options, c *corpus.Corpus, queries []corpus.Query, bench *load.BenchFile) error {
	if o.transport != "inmem" {
		return fmt.Errorf("-zipf-study requires -transport inmem")
	}

	// Phase shapes. Flags override the layer's knobs where set; the
	// baseline always runs bare. The study defaults promote earlier
	// and replicate wider than the server defaults: with the cache
	// absorbing repeats, each query costs ~one op at its template's
	// root, so flattening the per-peer load needs the whole Zipf head
	// spread, not just its first few templates.
	hotOpts := *o
	if hotOpts.cacheUnits <= 0 {
		hotOpts.cacheUnits = 4096
	}
	hotOpts.cachePolicy = core.CachePolicyHot
	if hotOpts.hotReplicas <= 0 {
		hotOpts.hotReplicas = 3
	}
	if hotOpts.hotThresh <= 0 {
		hotOpts.hotThresh = 16
	}
	hotOpts.hotSpread = true
	offOpts := *o
	offOpts.cacheUnits = 0
	offOpts.hotReplicas = 0
	offOpts.hotSpread = false

	// A capacity probe on the baseline shape anchors the equal offered
	// rate of both phases: loaded enough to expose the hot spot,
	// healthy enough that the baseline's p99 is queueing, not collapse.
	probe, err := newInmemFleet(&offOpts, c, o.policy())
	if err != nil {
		return err
	}
	capacity := probeCapacity(o, probe, queries)
	probe.close()
	if capacity <= 0 {
		return fmt.Errorf("capacity probe measured no throughput")
	}
	bench.CapacityQPS = capacity
	rate := 0.6 * capacity
	fmt.Printf("capacity ≈ %.0f q/s (closed-loop probe, cache off); offering %.0f q/s to both phases\n",
		capacity, rate)

	off, err := newInmemFleet(&offOpts, c, o.policy())
	if err != nil {
		return err
	}
	defer off.close()
	hot, err := newInmemFleet(&hotOpts, c, o.policy())
	if err != nil {
		return err
	}
	defer hot.close()

	storm := func(name string, f *inmemFleet, shape *options) (load.RunResult, error) {
		opsBefore := opsSnapshot(f.d)
		teleBefore := f.reg.Snapshot().Counters
		rep, err := runPhase(o, f, queries, rate)
		if err != nil {
			return load.RunResult{}, err
		}
		curve := opsCurve(o.r, opsBefore, opsSnapshot(f.d))
		tele := f.reg.Snapshot().Counters
		rr := load.RunResult{
			Name: name, Admission: true, RateQPS: rate,
			Arrival: o.arrival, TimeoutNS: o.timeout.Nanoseconds(), Report: rep,
			CacheUnits: shape.cacheUnits, HotReplicas: shape.hotReplicas,
			HotThreshold: shape.hotThresh,
		}
		if curve.Total > 0 {
			rr.TopNodeShare = float64(curve.Loads[0]) / float64(curve.Total)
			rr.LoadGini = curve.Gini()
		}
		hits := tele["core_cache_hits_total"] - teleBefore["core_cache_hits_total"]
		misses := tele["core_cache_misses_total"] - teleBefore["core_cache_misses_total"]
		if hits+misses > 0 {
			rr.CacheHitRatio = float64(hits) / float64(hits+misses)
		}
		rr.SoftServes = tele["core_soft_serves_total"] - teleBefore["core_soft_serves_total"]
		rr.RefineHits = tele["core_refine_hits_total"] - teleBefore["core_refine_hits_total"]
		printReport(name, rate, rep)
		fmt.Printf("%-18s top-node %.1f%% gini %.3f hit-ratio %.3f soft-serves %d refine-hits %d\n",
			"", 100*rr.TopNodeShare, rr.LoadGini, rr.CacheHitRatio, rr.SoftServes, rr.RefineHits)
		return rr, nil
	}

	offRR, err := storm("zipf-cache-off", off, &offOpts)
	if err != nil {
		return err
	}
	hotRR, err := storm("zipf-hot-layer", hot, &hotOpts)
	if err != nil {
		return err
	}
	bench.Runs = append(bench.Runs, offRR, hotRR)

	// Byte-identity verify pass: every distinct template, serially,
	// hot-layer answer (cache, soft replicas, spreading all live)
	// against the baseline's NoCache traversal.
	ctx := context.Background()
	seen := make(map[string]bool, o.templates)
	verified, mismatches := 0, 0
	for _, q := range queries {
		key := q.Keywords.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		want, err := off.d.Client.SupersetSearch(ctx, q.Keywords, o.thresh,
			core.SearchOptions{Order: core.ParallelLevels, NoCache: true})
		if err != nil {
			return fmt.Errorf("verify baseline %v: %w", q.Keywords, err)
		}
		got, err := hot.d.Client.SupersetSearch(ctx, q.Keywords, o.thresh,
			core.SearchOptions{Order: core.ParallelLevels})
		if err != nil {
			return fmt.Errorf("verify hot %v: %w", q.Keywords, err)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) || got.Exhausted != want.Exhausted {
			mismatches++
		}
		verified++
	}

	// The study's acceptance assertions.
	pass := true
	check := func(ok bool, format string, args ...any) {
		verdict := "PASS"
		if !ok {
			verdict, pass = "FAIL", false
		}
		fmt.Printf("%s  %s\n", verdict, fmt.Sprintf(format, args...))
	}
	check(offRR.Report.Latency.P99 > 0 && hotRR.Report.Latency.P99 < offRR.Report.Latency.P99,
		"hot-layer p99 (%dns) below cache-off p99 (%dns) at equal offered load",
		hotRR.Report.Latency.P99, offRR.Report.Latency.P99)
	check(hotRR.TopNodeShare < offRR.TopNodeShare,
		"hot-layer top-node share (%.1f%%) below cache-off (%.1f%%)",
		100*hotRR.TopNodeShare, 100*offRR.TopNodeShare)
	check(hotRR.LoadGini <= offRR.LoadGini,
		"hot-layer load Gini (%.3f) no worse than cache-off (%.3f)",
		hotRR.LoadGini, offRR.LoadGini)
	check(hotRR.CacheHitRatio > 0.5,
		"hot-layer cache hit ratio %.3f above 0.5 on the Zipf mix", hotRR.CacheHitRatio)
	check(hotRR.SoftServes > 0,
		"soft replicas served load (%d queries)", hotRR.SoftServes)
	check(verified > 0 && mismatches == 0,
		"answers byte-identical across %d distinct templates (%d mismatches)", verified, mismatches)
	if !pass {
		return fmt.Errorf("zipf hotspot-storm study failed its acceptance assertions")
	}
	return nil
}

// opsSnapshot captures each server's cumulative served-operation count.
func opsSnapshot(d *sim.Deployment) []uint64 {
	out := make([]uint64, len(d.Servers))
	for i, s := range d.Servers {
		out[i] = s.OpsServed()
	}
	return out
}

// opsCurve folds two ops snapshots into a per-peer load curve over the
// window (heaviest first), reusing the Figure 6 machinery for shares
// and Gini.
func opsCurve(r int, before, after []uint64) sim.LoadCurve {
	loads := make([]int, len(after))
	total := 0
	for i := range after {
		loads[i] = int(after[i] - before[i])
		total += loads[i]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	return sim.LoadCurve{Scheme: sim.SchemeHypercube, R: r, Loads: loads, Total: total}
}
