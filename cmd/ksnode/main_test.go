package main

import (
	"context"
	"os"
	"strings"
	"testing"

	keysearch "github.com/p2pkeyword/keysearch"
)

// testPeer builds a single-peer in-memory network for console tests.
func testPeer(t *testing.T) *keysearch.Peer {
	t.Helper()
	net := keysearch.NewInMemoryTransport(1)
	t.Cleanup(func() { net.Close() })
	peer, err := keysearch.NewPeer(net, "console-peer", keysearch.Config{
		Dim:                 6,
		MaintenanceInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	peer.Create()
	return peer
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestDispatchPublishSearchFetch(t *testing.T) {
	peer := testPeer(t)
	ctx := context.Background()

	out, err := captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"publish", "song1", "mp3", "jazz"})
	})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if !strings.Contains(out, "published song1") {
		t.Errorf("publish output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"search", "5", "jazz"})
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !strings.Contains(out, "song1") || !strings.Contains(out, "1 matches") {
		t.Errorf("search output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"pin", "mp3", "jazz"})
	})
	if err != nil || !strings.Contains(out, "song1") {
		t.Errorf("pin output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"fetch", "song1"})
	})
	if err != nil || !strings.Contains(out, "local://song1") {
		t.Errorf("fetch output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"stats"})
	})
	if err != nil || !strings.Contains(out, "index:") {
		t.Errorf("stats output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"unpublish", "song1", "mp3", "jazz"})
	})
	if err != nil || !strings.Contains(out, "unpublished") {
		t.Errorf("unpublish output: %q err: %v", out, err)
	}
}

func TestDispatchUsageErrors(t *testing.T) {
	peer := testPeer(t)
	ctx := context.Background()
	for _, cmd := range [][]string{
		{"publish"},
		{"unpublish", "x"},
		{"pin"},
		{"search"},
		{"search", "zero"},
		{"search", "0", "kw"},
		{"fetch"},
		{"bogus"},
	} {
		if _, err := captureStdout(t, func() error {
			return dispatch(ctx, peer, cmd)
		}); err == nil {
			t.Errorf("command %v accepted", cmd)
		}
	}
}
