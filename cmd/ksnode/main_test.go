package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	keysearch "github.com/p2pkeyword/keysearch"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// testPeer builds a single-peer in-memory network for console tests.
func testPeer(t *testing.T) *keysearch.Peer {
	t.Helper()
	net := keysearch.NewInMemoryTransport(1)
	t.Cleanup(func() { net.Close() })
	peer, err := keysearch.NewPeer(net, "console-peer", keysearch.Config{
		Dim:                 6,
		MaintenanceInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	peer.Create()
	return peer
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestDispatchPublishSearchFetch(t *testing.T) {
	peer := testPeer(t)
	ctx := context.Background()

	out, err := captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"publish", "song1", "mp3", "jazz"})
	})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if !strings.Contains(out, "published song1") {
		t.Errorf("publish output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"search", "5", "jazz"})
	})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !strings.Contains(out, "song1") || !strings.Contains(out, "1 matches") {
		t.Errorf("search output: %q", out)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"pin", "mp3", "jazz"})
	})
	if err != nil || !strings.Contains(out, "song1") {
		t.Errorf("pin output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"prefix", "5", "ja"})
	})
	if err != nil || !strings.Contains(out, "song1") || !strings.Contains(out, "completeness=1.00") {
		t.Errorf("prefix output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"fetch", "song1"})
	})
	if err != nil || !strings.Contains(out, "local://song1") {
		t.Errorf("fetch output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"stats"})
	})
	if err != nil || !strings.Contains(out, "index:") {
		t.Errorf("stats output: %q err: %v", out, err)
	}

	out, err = captureStdout(t, func() error {
		return dispatch(ctx, peer, []string{"unpublish", "song1", "mp3", "jazz"})
	})
	if err != nil || !strings.Contains(out, "unpublished") {
		t.Errorf("unpublish output: %q err: %v", out, err)
	}
}

// TestServeMetricsEndpoints drives the -metrics-addr HTTP surface the
// way a Prometheus scraper and pprof client would: an instrumented
// peer serves its registry, searches show up in /metrics and /traces,
// and the pprof index answers.
func TestServeMetricsEndpoints(t *testing.T) {
	reg := telemetry.New(64)
	net := keysearch.NewInMemoryTransport(1)
	t.Cleanup(func() { net.Close() })
	peer, err := keysearch.NewPeer(net, "metrics-peer", keysearch.Config{
		Dim:                 6,
		MaintenanceInterval: -1,
		Telemetry:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	peer.Create()

	ctx := context.Background()
	obj := keysearch.Object{ID: "song1", Keywords: keysearch.NewKeywordSet("mp3", "jazz")}
	if err := peer.Publish(ctx, obj, "local://song1"); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Search(ctx, keysearch.NewKeywordSet("jazz"), 5, keysearch.SearchOptions{}); err != nil {
		t.Fatal(err)
	}

	bound, shutdown, err := serveMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = shutdown() })

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`core_ops_total{op="superset-search"} 1`,
		"# TYPE core_search_duration_ns histogram",
		"core_index_objects 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := get("/traces"); code != 200 || !strings.Contains(body, `"op": "superset-search"`) {
		t.Errorf("/traces -> %d:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ -> %d:\n%s", code, body)
	}
}

func TestDispatchUsageErrors(t *testing.T) {
	peer := testPeer(t)
	ctx := context.Background()
	for _, cmd := range [][]string{
		{"publish"},
		{"unpublish", "x"},
		{"pin"},
		{"search"},
		{"search", "zero"},
		{"search", "0", "kw"},
		{"fetch"},
		{"bogus"},
	} {
		if _, err := captureStdout(t, func() error {
			return dispatch(ctx, peer, cmd)
		}); err == nil {
			t.Errorf("command %v accepted", cmd)
		}
	}
}
