// Command ksnode runs one keysearch peer as an OS process over TCP,
// with a line-oriented console for publishing and searching. Start a
// first node, then join more from other terminals:
//
//	ksnode -listen 127.0.0.1:7001
//	ksnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Console commands:
//
//	publish <id> <kw1> [kw2 ...]   share an object held here
//	unpublish <id> <kw1> [kw2 ...] withdraw it
//	pin <kw1> [kw2 ...]            exact keyword-set search
//	search <n> <kw1> [kw2 ...]     up to n superset matches
//	prefix <n> <pfx>               up to n objects with a keyword
//	                               starting pfx (constrained multicast)
//	refine <n> <base1,base2> <kw1> [kw2 ...]
//	                               narrow a previous search for the
//	                               comma-joined base keywords to this
//	                               superset query without re-traversing
//	fetch <id>                     resolve replica references
//	stats                          local index/cache statistics
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	keysearch "github.com/p2pkeyword/keysearch"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ksnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ksnode", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:0", "address to listen on")
		join        = fs.String("join", "", "address of an existing node (empty = start a new network)")
		dim         = fs.Int("dim", 10, "hypercube dimensionality (must match the network)")
		cache       = fs.Int("cache", 128, "per-node result cache capacity (object IDs)")
		cachePolicy = fs.String("cache-policy", "hot", "result cache policy: hot (popularity-tracked, frequency admission) | fifo (legacy)")
		cacheTarget = fs.Float64("cache-target-hit", 0, "hot policy: auto-tune cache capacity toward this hit ratio, 0..1 (0 = fixed capacity)")
		hotReplicas = fs.Int("hot-replicas", 0, "soft-replicate promoted hot roots onto this many extra peers (0 = disabled)")
		hotThresh   = fs.Int("hot-threshold", 0, "fresh queries before a root is promoted to soft replicas (0 = default; requires -hot-replicas)")
		hotSpread   = fs.Bool("hot-spread", false, "round-robin one-shot searches for promoted roots across owner and soft replicas")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /traces and /debug/pprof on this address (empty = disabled)")
		resilient   = fs.Bool("resilience", true, "retry/backoff and circuit breakers on outbound RPCs")
		hedgeAfter  = fs.Duration("hedge-after", 0, "duplicate still-unanswered read-only RPCs after this delay (0 = no hedging; requires -resilience)")
		batchWaves  = fs.Bool("batch-waves", true, "coalesce parallel search waves into one RPC frame per distinct peer")
		shards      = fs.Int("shards", 0, "index-table lock stripes (0 = GOMAXPROCS rounded to a power of two, 1 = single lock)")
		scanPar     = fs.Int("scan-parallelism", 0, "worker pool for batched sub-query scans (0 = GOMAXPROCS, 1 = sequential)")
		dataDir     = fs.String("data-dir", "", "durable index state directory: WAL + snapshots, replayed on restart (empty = in-memory only)")
		fsyncPolicy = fs.String("fsync", "interval", "WAL flush policy with -data-dir: always | interval | off")
		snapEvery   = fs.Int("snapshot-every", 0, "compact the WAL into a snapshot after this many mutations (0 = default, negative = never)")

		admissionOn  = fs.Bool("admission", false, "shed client-facing load beyond the bounds below with typed overload errors (Retry-After hints)")
		maxInflight  = fs.Int("max-inflight", 64, "admission: concurrent client-facing requests served (requires -admission)")
		maxQueue     = fs.Int("max-queue", 0, "admission: bounded wait queue beyond -max-inflight (0 = 2x max-inflight, -1 = none)")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission: longest a request may wait for a slot")
		clientRate   = fs.Float64("client-rate", 0, "admission: per-client sustained request rate, req/s (0 = no fair queuing)")
		clientBurst  = fs.Float64("client-burst", 0, "admission: per-client token-bucket burst (0 = rate/4)")

		wireMode      = fs.String("wire", keysearch.WireBinary, "outbound wire protocol: binary (multiplexed v2 framing) | gob (legacy serial); the listener always serves both")
		listenWorkers = fs.Int("listen-workers", 0, "decode/handler workers shared by all v2 connections (0 = 2x GOMAXPROCS, min 4)")

		migEntries  = fs.Int("migrate-chunk-entries", 0, "entries per inbound migration chunk (0 = default, 512)")
		migBytes    = fs.Int("migrate-chunk-bytes", 0, "approximate payload bytes per migration chunk (0 = default, 256 KiB)")
		migThrottle = fs.Duration("migrate-throttle", 0, "pause between migration chunks, bounding transfer bandwidth (0 = back to back)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *telemetry.Registry
	var snapPeer *keysearch.Peer // set once the peer exists; read by the final snapshot
	if *metricsAddr != "" {
		reg = telemetry.New(256)
		bound, shutdown, err := serveMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics (traces at /traces, profiles at /debug/pprof/)\n", bound)
		defer func() {
			_ = shutdown()
			// Flush the final counters so a scripted run keeps its
			// telemetry even though the HTTP endpoint is gone.
			fmt.Fprintln(os.Stderr, "final telemetry snapshot:")
			_ = reg.WriteJSON(os.Stderr)
			fmt.Fprintln(os.Stderr)
			if snapPeer != nil {
				writeCacheSnapshot(os.Stderr, snapPeer.CacheSnapshot())
			}
		}()
	}

	keysearch.RegisterTypes()
	transport, err := keysearch.NewTCPTransportConfig(keysearch.TCPConfig{
		Wire:          *wireMode,
		ListenWorkers: *listenWorkers,
	})
	if err != nil {
		return err
	}
	defer transport.Close()
	transport.SetTelemetry(reg)

	var pol *keysearch.ResiliencePolicy
	if *resilient {
		p := keysearch.DefaultResilience()
		p.HedgeDelay = *hedgeAfter
		pol = &p
	}
	batch := keysearch.BatchOn
	if !*batchWaves {
		batch = keysearch.BatchOff
	}
	var adm *keysearch.AdmissionPolicy
	if *admissionOn {
		adm = &keysearch.AdmissionPolicy{
			MaxInflight:    *maxInflight,
			MaxQueue:       *maxQueue,
			QueueTimeout:   *queueTimeout,
			PerClientRate:  *clientRate,
			PerClientBurst: *clientBurst,
		}
	}
	peer, err := keysearch.NewPeer(transport, keysearch.Addr(*listen), keysearch.Config{
		Dim:                 *dim,
		CacheCapacity:       *cache,
		CachePolicy:         *cachePolicy,
		CacheTargetHit:      *cacheTarget,
		HotReplicas:         *hotReplicas,
		HotPromoteThreshold: *hotThresh,
		HotSpread:           *hotSpread,
		MaintenanceInterval: 500 * time.Millisecond,
		Telemetry:           reg,
		Resilience:          pol,
		BatchWaves:          batch,
		Shards:              *shards,
		ScanParallelism:     *scanPar,
		DataDir:             *dataDir,
		FsyncPolicy:         *fsyncPolicy,
		SnapshotEvery:       *snapEvery,
		Admission:           adm,
		MigrateChunkEntries: *migEntries,
		MigrateChunkBytes:   *migBytes,
		MigrateThrottle:     *migThrottle,
	})
	if err != nil {
		return err
	}
	defer peer.Close()
	snapPeer = peer
	if *dataDir != "" {
		st := peer.IndexStats()
		fmt.Fprintf(os.Stderr, "durable index in %s (fsync=%s); recovered %d entries\n",
			*dataDir, *fsyncPolicy, st.Entries)
		if ms := peer.MigrationStats(); ms.Recovered > 0 {
			fmt.Fprintf(os.Stderr, "recovered %d in-flight migration cursor(s); resuming after create/join\n",
				ms.Recovered)
		}
	}

	ctx := context.Background()
	if *join == "" {
		peer.Create()
		fmt.Printf("started new network; listening on %s\n", peer.Addr())
	} else {
		joinCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err := peer.Join(joinCtx, keysearch.Addr(*join))
		cancel()
		if err != nil {
			return fmt.Errorf("join %s: %w", *join, err)
		}
		fmt.Printf("joined network via %s; listening on %s\n", *join, peer.Addr())
	}

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return nil
		}
		if err := dispatch(ctx, peer, fields); err != nil {
			fmt.Println("error:", err)
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

// writeCacheSnapshot prints the result cache's policy, occupancy and
// per-instance hit ratios in the stats/final-snapshot format.
func writeCacheSnapshot(w *os.File, snap keysearch.CacheSnapshot) {
	fmt.Fprintf(w, "result cache: policy=%s %d/%d units, %d entries, hit ratio %.3f\n",
		snap.Policy, snap.Units, snap.CapacityUnits, snap.Entries, snap.HitRatio())
	for _, inst := range snap.PerInstance {
		fmt.Fprintf(w, "  instance %s: %d hits / %d misses (ratio %.3f), %d entries / %d units\n",
			inst.Instance, inst.Hits, inst.Misses, inst.HitRatio(), inst.Entries, inst.Units)
	}
}

// serveMetrics starts the observability HTTP endpoint (Prometheus
// /metrics, JSON /traces, net/http/pprof) at addr, returning the bound
// address and a shutdown func.
func serveMetrics(addr string, reg *telemetry.Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener %q: %w", addr, err)
	}
	srv := &http.Server{Handler: telemetry.NewHTTPMux(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

func dispatch(ctx context.Context, peer *keysearch.Peer, fields []string) error {
	opCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	switch fields[0] {
	case "publish":
		if len(fields) < 3 {
			return fmt.Errorf("usage: publish <id> <kw...>")
		}
		obj := keysearch.Object{ID: fields[1], Keywords: keysearch.NewKeywordSet(fields[2:]...)}
		if err := peer.Publish(opCtx, obj, "local://"+fields[1]); err != nil {
			return err
		}
		fmt.Printf("published %s %v\n", obj.ID, obj.Keywords)
	case "unpublish":
		if len(fields) < 3 {
			return fmt.Errorf("usage: unpublish <id> <kw...>")
		}
		obj := keysearch.Object{ID: fields[1], Keywords: keysearch.NewKeywordSet(fields[2:]...)}
		if err := peer.Unpublish(opCtx, obj, "local://"+fields[1]); err != nil {
			return err
		}
		fmt.Printf("unpublished %s\n", obj.ID)
	case "pin":
		if len(fields) < 2 {
			return fmt.Errorf("usage: pin <kw...>")
		}
		ids, stats, err := peer.PinSearch(opCtx, keysearch.NewKeywordSet(fields[1:]...))
		if err != nil {
			return err
		}
		fmt.Printf("%v (%d messages)\n", ids, stats.Messages)
	case "search":
		if len(fields) < 3 {
			return fmt.Errorf("usage: search <n> <kw...>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad threshold %q", fields[1])
		}
		res, err := peer.Search(opCtx, keysearch.NewKeywordSet(fields[2:]...), n, keysearch.SearchOptions{})
		if err != nil {
			return err
		}
		for _, m := range res.Matches {
			fmt.Printf("  %s %v (+%d keywords)\n", m.ObjectID, m.Keywords(), m.Depth)
		}
		fmt.Printf("%d matches, %d nodes contacted, exhausted=%v\n",
			len(res.Matches), res.Stats.NodesContacted, res.Exhausted)
	case "prefix":
		if len(fields) != 3 {
			return fmt.Errorf("usage: prefix <n> <pfx>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad threshold %q", fields[1])
		}
		res, err := peer.PrefixSearch(opCtx, fields[2], n, keysearch.SearchOptions{})
		if err != nil {
			return err
		}
		for _, m := range res.Matches {
			fmt.Printf("  %s %v\n", m.ObjectID, m.Keywords())
		}
		fmt.Printf("%d matches, %d nodes contacted, exhausted=%v, completeness=%.2f\n",
			len(res.Matches), res.Stats.NodesContacted, res.Exhausted, res.Completeness)
	case "refine":
		if len(fields) < 4 {
			return fmt.Errorf("usage: refine <n> <base1,base2,...> <kw...>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return fmt.Errorf("bad threshold %q", fields[1])
		}
		base := keysearch.NewKeywordSet(strings.Split(fields[2], ",")...)
		refined := keysearch.NewKeywordSet(fields[3:]...)
		res, err := peer.Refine(opCtx, base, refined, n, keysearch.SearchOptions{})
		if err != nil {
			return err
		}
		for _, m := range res.Matches {
			fmt.Printf("  %s %v (+%d keywords)\n", m.ObjectID, m.Keywords(), m.Depth)
		}
		path := "traversal fallback"
		if res.Stats.RefineHit {
			path = "derived from cached ancestor"
		}
		fmt.Printf("%d matches (%s), %d nodes contacted, exhausted=%v\n",
			len(res.Matches), path, res.Stats.NodesContacted, res.Exhausted)
	case "fetch":
		if len(fields) != 2 {
			return fmt.Errorf("usage: fetch <id>")
		}
		refs, err := peer.Fetch(opCtx, fields[1])
		if err != nil {
			return err
		}
		for _, r := range refs {
			fmt.Printf("  %s %s\n", r.Holder, r.Location)
		}
	case "stats":
		st := peer.IndexStats()
		hits, misses := peer.CacheStats()
		fmt.Printf("index: %d vertices, %d entries, %d objects; cache: %d hits / %d misses\n",
			st.Vertices, st.Entries, st.Objects, hits, misses)
		writeCacheSnapshot(os.Stdout, peer.CacheSnapshot())
		ms := peer.MigrationStats()
		fmt.Printf("migration: %d active, %d chunks / %d entries applied, %d resumes, %d double-reads, %d commits, %d failures\n",
			ms.Active, ms.Chunks, ms.Entries, ms.Resumes, ms.DoubleReads, ms.Commits, ms.Failures)
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
	return nil
}
