package keysearch_test

import (
	"context"
	"fmt"
	"log"

	keysearch "github.com/p2pkeyword/keysearch"
)

// Example shows the minimal publish-and-search flow on an in-process
// cluster.
func Example() {
	cluster, err := keysearch.NewLocalCluster(3, keysearch.Config{Dim: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	obj := keysearch.Object{
		ID:       "hinet",
		Keywords: keysearch.NewKeywordSet("ISP", "network", "download"),
	}
	if err := cluster.Peers[0].Publish(ctx, obj, "/files/hinet"); err != nil {
		log.Fatal(err)
	}

	res, err := cluster.Peers[2].Search(ctx, keysearch.NewKeywordSet("network"),
		keysearch.All, keysearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.Matches {
		fmt.Println(m.ObjectID, m.Keywords())
	}
	// Output:
	// hinet {download, isp, network}
}

// ExamplePeer_PinSearch locates objects by their exact keyword set in
// a single lookup.
func ExamplePeer_PinSearch() {
	cluster, err := keysearch.NewLocalCluster(3, keysearch.Config{Dim: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	k := keysearch.NewKeywordSet("tvbs", "news")
	if err := cluster.Peers[0].Publish(ctx,
		keysearch.Object{ID: "tvbs", Keywords: k}, "/www"); err != nil {
		log.Fatal(err)
	}
	ids, stats, err := cluster.Peers[1].PinSearch(ctx, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids, stats.Messages)
	// Output:
	// [tvbs] 2
}

// ExampleCursor pages through a large result set cumulatively: the
// responsible node keeps the traversal frontier between pages.
func ExampleCursor() {
	cluster, err := keysearch.NewLocalCluster(3, keysearch.Config{Dim: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		obj := keysearch.Object{
			ID:       fmt.Sprintf("doc-%d", i),
			Keywords: keysearch.NewKeywordSet("report", fmt.Sprintf("year-%d", 2000+i)),
		}
		if err := cluster.Peers[0].Publish(ctx, obj, "/docs"); err != nil {
			log.Fatal(err)
		}
	}

	cur, err := cluster.Peers[1].SearchCursor(keysearch.NewKeywordSet("report"),
		keysearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pages := 0
	total := 0
	for !cur.Exhausted() {
		page, _, err := cur.Next(ctx, 2)
		if err != nil {
			log.Fatal(err)
		}
		pages++
		total += len(page)
	}
	fmt.Printf("%d results over %d pages\n", total, pages)
	// Output:
	// 5 results over 3 pages
}

// ExampleCategorize groups search hits by their extra keywords,
// powering "did you mean to narrow by …?" refinement UIs.
func ExampleCategorize() {
	cluster, err := keysearch.NewLocalCluster(2, keysearch.Config{Dim: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	for _, spec := range []struct {
		id   string
		tags []string
	}{
		{"exact", []string{"jazz"}},
		{"piano", []string{"jazz", "piano"}},
		{"live", []string{"jazz", "live"}},
	} {
		obj := keysearch.Object{ID: spec.id, Keywords: keysearch.NewKeywordSet(spec.tags...)}
		if err := cluster.Peers[0].Publish(ctx, obj, "/m"); err != nil {
			log.Fatal(err)
		}
	}
	q := keysearch.NewKeywordSet("jazz")
	res, err := cluster.Peers[1].Search(ctx, q, keysearch.All, keysearch.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, cat := range keysearch.Categorize(q, res.Matches) {
		fmt.Printf("+%s: %d\n", cat.ExtraKeywords(), len(cat.Matches))
	}
	// Output:
	// +{}: 1
	// +{live}: 1
	// +{piano}: 1
}
