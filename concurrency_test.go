package keysearch

import (
	"context"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentPublishAndSearch hammers a cluster with parallel
// publishers and searchers; run with -race. Searches may observe any
// prefix of the publishes but must never error or return false
// positives.
func TestConcurrentPublishAndSearch(t *testing.T) {
	c := newCluster(t, 6, Config{Dim: 8, CacheCapacity: 64})
	ctx := context.Background()

	const (
		publishers = 4
		perWorker  = 25
		searchers  = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, publishers+searchers)

	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := c.Peers[w%len(c.Peers)]
			for i := 0; i < perWorker; i++ {
				id := "conc-" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				obj := Object{ID: id, Keywords: NewKeywordSet("shared", "w"+strconv.Itoa(w), "i"+strconv.Itoa(i%5))}
				if err := peer.Publish(ctx, obj, "/"+id); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			peer := c.Peers[(s+2)%len(c.Peers)]
			q := NewKeywordSet("shared")
			for i := 0; i < 20; i++ {
				res, err := peer.Search(ctx, q, 10, SearchOptions{})
				if err != nil {
					errs <- err
					return
				}
				for _, m := range res.Matches {
					if !q.SubsetOf(m.Keywords()) {
						errs <- ErrBadObject
						return
					}
				}
			}
			errs <- nil
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent workload: %v", err)
		}
	}

	// Quiesced: an exhaustive search sees every published object.
	res, err := c.Peers[0].Search(ctx, NewKeywordSet("shared"), All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != publishers*perWorker {
		t.Errorf("final matches = %d, want %d", len(res.Matches), publishers*perWorker)
	}
}

// TestConcurrentCursors runs several cumulative cursors over the same
// query concurrently; sessions are independent root-side state.
func TestConcurrentCursors(t *testing.T) {
	c := newCluster(t, 4, Config{Dim: 8})
	ctx := context.Background()
	const n = 18
	for i := 0; i < n; i++ {
		obj := Object{ID: "cc-" + strconv.Itoa(i), Keywords: NewKeywordSet("cursor", "x"+strconv.Itoa(i))}
		if err := c.Peers[0].Publish(ctx, obj, "/"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur, err := c.Peers[g%4].SearchCursor(NewKeywordSet("cursor"), SearchOptions{})
			if err != nil {
				errs <- err
				return
			}
			seen := map[string]bool{}
			for !cur.Exhausted() {
				page, _, err := cur.Next(ctx, 4)
				if err != nil {
					errs <- err
					return
				}
				for _, m := range page {
					if seen[m.ObjectID] {
						errs <- ErrExhausted // stand-in for "duplicate"
						return
					}
					seen[m.ObjectID] = true
				}
			}
			if len(seen) != n {
				errs <- ErrNoSuchSession // stand-in for "incomplete"
				return
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent cursors: %v", err)
		}
	}
}
