package keysearch

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// migrateSmokeObjects is the corpus the migration crash smoke moves:
// published into the source peer by the parent, pulled by the durable
// child, and re-verified after the child is SIGKILLed mid-transfer.
func migrateSmokeObjects() []Object {
	objs := make([]Object, 16)
	for i := range objs {
		objs[i] = Object{
			ID:       "mig-" + strconv.Itoa(i),
			Keywords: NewKeywordSet("mig", "x"+strconv.Itoa(i)),
		}
	}
	return objs
}

// TestMigrateCrashHelper is the subprocess half of the migration crash
// smoke: a durable fsync=always peer that pulls the whole index of the
// parent's source peer one entry per chunk with a slow throttle,
// reports when a few chunks have been applied, and then waits to be
// SIGKILLed between chunks. Inert unless re-executed with
// KS_MIGRATE_CRASH_HELPER=1.
func TestMigrateCrashHelper(t *testing.T) {
	if os.Getenv("KS_MIGRATE_CRASH_HELPER") != "1" {
		t.Skip("migrate crash helper: only runs re-executed by TestMigrateCrashResumeSmoke")
	}
	RegisterTypes()
	net := NewTCPTransport()
	peer, err := NewPeer(net, "127.0.0.1:0", Config{
		Dim:                 6,
		MaintenanceInterval: -1,
		DataDir:             os.Getenv("KS_MIGRATE_CRASH_DIR"),
		FsyncPolicy:         "always",
		MigrateChunkEntries: 1,
		MigrateThrottle:     150 * time.Millisecond,
	})
	if err != nil {
		fmt.Println("HELPER-ERROR:", err)
		os.Exit(1)
	}
	peer.Create()
	// Whole-ring bounds: keys NOT in (0, 1] — everything the source
	// holds — migrate here. The migration key is (bounds, source), so
	// the restarted parent-side peer resumes this exact transfer from
	// the durable cursor without the helper's ring identity mattering.
	peer.server.EnqueueMigration(Addr(os.Getenv("KS_MIGRATE_CRASH_SRC")), 0, 1)
	fmt.Println("HELPER-READY")
	for {
		if st := peer.MigrationStats(); st.Chunks >= 3 {
			fmt.Println("HELPER-CHUNKS")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {} // hold the window open until the parent kills us
}

// TestMigrateCrashResumeSmoke is the end-to-end crash-safety check for
// live migration: a child process pulls a 16-entry index one chunk at
// a time, is SIGKILLed between chunks (no shutdown path runs), and a
// peer restarted over the same data directory must recover the durable
// cursor, resume the pull where it stopped, commit, and end up with
// exactly the source's entries — none lost, none duplicated, source
// drained.
func TestMigrateCrashResumeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short")
	}
	dir := t.TempDir()
	objs := migrateSmokeObjects()

	RegisterTypes()
	net := NewTCPTransport()
	defer net.Close()
	source, err := NewPeer(net, "127.0.0.1:0", Config{Dim: 6, MaintenanceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	source.Create()
	publishAll(t, source, objs)
	if got := source.IndexStats().Objects; got != len(objs) {
		t.Fatalf("source holds %d/%d entries before migration", got, len(objs))
	}

	cmd := exec.Command(os.Args[0], "-test.run", "^TestMigrateCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"KS_MIGRATE_CRASH_HELPER=1",
		"KS_MIGRATE_CRASH_DIR="+dir,
		"KS_MIGRATE_CRASH_SRC="+string(source.Addr()),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	progress := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if line == "HELPER-CHUNKS" {
				progress <- nil
				return
			}
			if strings.HasPrefix(line, "HELPER-ERROR") {
				progress <- fmt.Errorf("%s", line)
				return
			}
		}
		progress <- fmt.Errorf("helper exited before applying chunks: %v", sc.Err())
	}()
	select {
	case err := <-progress:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("helper never applied its chunks")
	}

	// SIGKILL between chunks: no commit ran, no cursor-done record, no
	// graceful close — only fsynced chunk inserts and checkpoints.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Restart over the same data directory. Recovery must surface the
	// in-flight transfer (a strict non-empty prefix of the entries plus
	// its durable cursor) before any resume runs.
	puller, err := NewPeer(net, "127.0.0.1:0", Config{
		Dim:                 6,
		MaintenanceInterval: -1,
		DataDir:             dir,
	})
	if err != nil {
		t.Fatalf("restart from %s: %v", dir, err)
	}
	defer puller.Close()
	if st := puller.MigrationStats(); st.Recovered != 1 {
		t.Fatalf("recovered %d durable migration cursors, want 1 (%+v)", st.Recovered, st)
	}
	prefix := puller.IndexStats().Objects
	if prefix < 3 {
		t.Fatalf("recovered only %d applied entries; helper confirmed 3 chunks of 1", prefix)
	}

	// Create resumes the recovered transfer against the still-live
	// source and must finish it: commit included.
	puller.Create()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := puller.MigrationStats()
		if st.Active == 0 && st.Recovered == 0 && st.Commits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed migration never committed: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := puller.MigrationStats()
	if st.Resumes < 1 {
		t.Errorf("restart did not count as a resume: %+v", st)
	}
	if st.Failures != 0 {
		t.Errorf("resumed migration recorded failures: %+v", st)
	}

	// Exactness: every entry moved, none lost, none duplicated, and the
	// committed source dropped the range.
	if got := puller.IndexStats().Objects; got != len(objs) {
		t.Fatalf("puller holds %d/%d entries after resume", got, len(objs))
	}
	if got := source.IndexStats().Objects; got != 0 {
		t.Fatalf("source still holds %d entries after commit", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, obj := range objs {
		ids, _, err := puller.PinSearch(ctx, obj.Keywords)
		if err != nil {
			t.Fatalf("pin %v after resume: %v", obj.Keywords, err)
		}
		if len(ids) != 1 || ids[0] != obj.ID {
			t.Errorf("pin %v after resume = %v, want [%s]", obj.Keywords, ids, obj.ID)
		}
	}
}
