package keysearch

import (
	"context"
	"testing"
)

// findDistinctRoots returns a keyword set whose primary- and
// secondary-replica root vertices live on different peers, so killing
// the primary root exercises failover.
func findDistinctRoots(t *testing.T, c *Cluster, candidates []Set) (Set, Addr) {
	t.Helper()
	ctx := context.Background()
	p := c.Peers[0]
	for _, k := range candidates {
		primaryAddr, err := p.resolveRoot(ctx, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		secondaryAddr, err := p.resolveRoot(ctx, 1, k)
		if err != nil {
			t.Fatal(err)
		}
		if primaryAddr != secondaryAddr {
			return k, primaryAddr
		}
	}
	t.Skip("no candidate keyword set with distinct replica roots")
	return Set{}, ""
}

func TestIndexReplicationSurvivesPrimaryRootFailure(t *testing.T) {
	c := newCluster(t, 8, Config{Dim: 8, IndexReplicas: 2})
	ctx := context.Background()

	candidates := []Set{
		NewKeywordSet("alpha", "beta"),
		NewKeywordSet("gamma", "delta"),
		NewKeywordSet("epsilon", "zeta"),
		NewKeywordSet("eta", "theta"),
		NewKeywordSet("iota", "kappa"),
	}
	k, primaryRoot := findDistinctRoots(t, c, candidates)

	obj := Object{ID: "replicated-object", Keywords: k}
	// Publish from a peer that is NOT the primary root, so the
	// publisher survives the failure.
	var publisher *Peer
	for _, p := range c.Peers {
		if p.Addr() != primaryRoot {
			publisher = p
			break
		}
	}
	if err := publisher.Publish(ctx, obj, "/data"); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// Sanity: searchable before the failure.
	ids, _, err := publisher.PinSearch(ctx, k)
	if err != nil || len(ids) != 1 {
		t.Fatalf("pre-failure pin = %v, %v", ids, err)
	}

	// Kill the primary replica's root node and heal the ring.
	c.Network().SetDown(primaryRoot, true)
	c.Heal(ctx)

	// Pin and superset searches still find the object via the
	// secondary replica.
	var searcher *Peer
	for _, p := range c.Peers {
		if p.Addr() != primaryRoot && p != publisher {
			searcher = p
			break
		}
	}
	ids, _, err = searcher.PinSearch(ctx, k)
	if err != nil {
		t.Fatalf("post-failure pin: %v", err)
	}
	if len(ids) != 1 || ids[0] != "replicated-object" {
		t.Fatalf("post-failure pin = %v", ids)
	}
	res, err := searcher.Search(ctx, k, All, SearchOptions{})
	if err != nil {
		t.Fatalf("post-failure search: %v", err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("post-failure search matches = %d", len(res.Matches))
	}
}

func TestSingleReplicaLosesEntriesOnRootFailure(t *testing.T) {
	// The contrast case: without replication, killing the responsible
	// node makes the entry unfindable even after the ring heals
	// (crash-stop, no state transfer) — the motivation for Section
	// 3.4's replication remark.
	c := newCluster(t, 8, Config{Dim: 8, IndexReplicas: 1})
	ctx := context.Background()

	k := NewKeywordSet("solo", "entry")
	p := c.Peers[0]
	rootAddr, err := p.resolveRoot(ctx, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	var publisher *Peer
	for _, q := range c.Peers {
		if q.Addr() != rootAddr {
			publisher = q
			break
		}
	}
	if err := publisher.Publish(ctx, Object{ID: "solo-obj", Keywords: k}, "/d"); err != nil {
		t.Fatal(err)
	}

	c.Network().SetDown(rootAddr, true)
	c.Heal(ctx)

	ids, _, err := publisher.PinSearch(ctx, k)
	if err == nil && len(ids) > 0 {
		t.Fatalf("unreplicated entry survived root failure: %v", ids)
	}
}
