package keysearch

import (
	"context"
	"strconv"
	"testing"
)

// TestPeerLeavePreservesSearchability: a graceful departure keeps
// every published object findable — DHT references and index entries
// both move to the successor.
func TestPeerLeavePreservesSearchability(t *testing.T) {
	c := newCluster(t, 6, Config{Dim: 8})
	ctx := context.Background()

	const n = 40
	for i := 0; i < n; i++ {
		id := "stay-" + strconv.Itoa(i)
		obj := Object{ID: id, Keywords: NewKeywordSet("durable", "k"+strconv.Itoa(i))}
		// Publish from peer 0, which will NOT leave, so replica
		// references stay valid.
		if err := c.Peers[0].Publish(ctx, obj, "/"+id); err != nil {
			t.Fatal(err)
		}
	}

	// A non-publisher peer leaves gracefully.
	leaver := c.Peers[3]
	before := leaver.IndexStats().Objects
	transferred, err := leaver.Leave(ctx)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if before > 0 && transferred == 0 {
		t.Fatalf("Leave reported 0 entries transferred, leaver hosted %d objects", before)
	}
	c.Heal(ctx)

	// Every object remains pin- and superset-searchable from the
	// survivors, including the entries the leaver used to host.
	res, err := c.Peers[0].Search(ctx, NewKeywordSet("durable"), All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatalf("Search after leave: %v", err)
	}
	if len(res.Matches) != n {
		t.Fatalf("matches after leave = %d, want %d (leaver hosted %d entries)",
			len(res.Matches), n, before)
	}
	for i := 0; i < n; i += 7 {
		id := "stay-" + strconv.Itoa(i)
		refs, err := c.Peers[1].Fetch(ctx, id)
		if err != nil || len(refs) != 1 {
			t.Fatalf("Fetch %s after leave: %v %v", id, refs, err)
		}
	}
}

// TestPeerLeaveVersusCrash contrasts graceful leave with crash-stop:
// the crash loses the victim's index entries, the leave does not.
func TestPeerLeaveVersusCrash(t *testing.T) {
	run := func(graceful bool) int {
		c, err := NewLocalCluster(6, Config{Dim: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		const n = 40
		for i := 0; i < n; i++ {
			id := "vc-" + strconv.Itoa(i)
			obj := Object{ID: id, Keywords: NewKeywordSet("contrast", "x"+strconv.Itoa(i))}
			if err := c.Peers[0].Publish(ctx, obj, "/"+id); err != nil {
				t.Fatal(err)
			}
		}
		victim := c.Peers[3]
		if graceful {
			if _, err := victim.Leave(ctx); err != nil {
				t.Fatalf("Leave: %v", err)
			}
		} else {
			c.Network().SetDown(victim.Addr(), true)
		}
		c.Heal(ctx)
		res, err := c.Peers[0].Search(ctx, NewKeywordSet("contrast"), All, SearchOptions{NoCache: true})
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		return len(res.Matches)
	}
	if got := run(true); got != 40 {
		t.Errorf("graceful leave preserved %d/40 objects", got)
	}
	// The crash run typically loses the victim's share; assert only
	// that leave is at least as good (the victim may have hosted no
	// entries in an unlucky seed, making both equal).
	if crash, leave := run(false), run(true); crash > leave {
		t.Errorf("crash preserved more (%d) than leave (%d)?", crash, leave)
	}
}
